"""Byzantine-integrity mechanisms, unit by unit.

The chaos tier (``test_chaos_byzantine.py``) proves the end-to-end
verdict contract; this module pins each mechanism in isolation —
channel transcript accounting, broadcast-echo records, crafted
transcript divergence, checkpoint freshness and sealing context,
violation classification, and the reply router's generational dedup.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro import StudyConfig, generate_cohort, partition_cohort
from repro.config import (
    CollusionPolicy,
    FaultConfig,
    IntegrityConfig,
    ResilienceConfig,
)
from repro.core.federation import build_federation
from repro.core.integrity import (
    COUNTER_NAMES,
    IntegrityMonitor,
    classify_violation,
)
from repro.core.protocol import GenDPRProtocol
from repro.errors import (
    EquivocationError,
    IntegrityError,
    ProtocolError,
    ResilienceError,
    SealingError,
    StaleCheckpointError,
    TranscriptDivergenceError,
)
from repro.genomics import SyntheticSpec
from repro.net import serialization
from repro.tee.attestation import MonotonicCounter

MEMBERS = 3


@pytest.fixture(scope="module")
def cohort():
    cohort, _ = generate_cohort(
        SyntheticSpec(num_snps=60, num_case=90, num_control=80, seed=3)
    )
    return cohort


@pytest.fixture(scope="module")
def base_config(cohort):
    return StudyConfig(
        snp_count=cohort.num_snps,
        study_id="integrity-unit",
        seed=3,
        collusion=CollusionPolicy.none(),
    )


def _build(cohort, config):
    return build_federation(
        config, partition_cohort(cohort, MEMBERS), cohort
    )


@pytest.fixture(scope="module")
def reference(cohort, base_config):
    federation = _build(cohort, base_config)
    return GenDPRProtocol(federation).run()


class TestChannelTranscripts:
    def _pair(self):
        # A fresh fault-free federation gives us an established,
        # mutually attested channel pair without hand-rolling the
        # handshake.
        cohort, _ = generate_cohort(
            SyntheticSpec(num_snps=20, num_case=30, num_control=30, seed=1)
        )
        config = StudyConfig(
            snp_count=20, study_id="transcript-unit", seed=1
        )
        federation = _build(cohort, config)
        leader = federation.leader_id
        member = next(m for m in federation.member_ids if m != leader)
        end_a = federation.enclaves[leader]._channels[member]
        end_b = federation.enclaves[member]._channels[leader]
        return end_a, end_b

    def test_transcripts_mirror_after_traffic(self):
        end_a, end_b = self._pair()
        for i in range(3):
            end_b.open(end_a.protect(b"ping%d" % i))
            end_a.open(end_b.protect(b"pong%d" % i))
        a_sent, a_recv = end_a.transcript_snapshot()
        b_sent, b_recv = end_b.transcript_snapshot()
        assert a_sent == b_recv
        assert a_recv == b_sent

    def test_snapshot_is_non_destructive(self):
        end_a, end_b = self._pair()
        end_b.open(end_a.protect(b"one"))
        first = end_a.transcript_snapshot()
        assert end_a.transcript_snapshot() == first
        end_b.open(end_a.protect(b"two"))
        assert end_a.transcript_snapshot() != first

    def test_unsent_frame_desynchronises_transcripts(self):
        # A frame protected but never delivered (withheld by the host)
        # leaves the sender's sent digest ahead of the peer's recv
        # digest — exactly what the phase-boundary cross-check trips on.
        end_a, end_b = self._pair()
        end_b.open(end_a.protect(b"delivered"))
        end_a.protect(b"withheld")
        a_sent, _ = end_a.transcript_snapshot()
        _, b_recv = end_b.transcript_snapshot()
        assert a_sent != b_recv

    def test_rejected_frame_does_not_enter_transcript(self):
        from repro.errors import ChannelError

        end_a, end_b = self._pair()
        frame = end_a.protect(b"payload")
        before = end_b.transcript_snapshot()
        tampered = frame[:-1] + bytes([frame[-1] ^ 0x01])
        with pytest.raises(ChannelError):
            end_b.open(tampered)
        assert end_b.transcript_snapshot() == before
        end_b.open(frame)
        assert end_b.transcript_snapshot() != before


class TestBroadcastEcho:
    @pytest.fixture(scope="class")
    def completed(self, cohort, base_config):
        federation = _build(cohort, base_config)
        GenDPRProtocol(federation).run()
        return federation

    def test_echo_round_trip(self, completed):
        leader = completed.leader_id
        member = next(m for m in completed.member_ids if m != leader)
        frame = completed.enclaves[leader].ecall(
            "export_broadcast_echo", "prime", label="test"
        )
        # The member holds the same digest, so verification passes.
        completed.enclaves[member].ecall(
            "verify_broadcast_echo", "prime", leader, frame, label="test"
        )

    def test_forged_record_rejected(self, completed):
        from repro.errors import AuthenticationError

        leader = completed.leader_id
        member = next(m for m in completed.member_ids if m != leader)
        frame = completed.enclaves[leader].ecall(
            "export_broadcast_echo", "prime", label="test"
        )
        envelope = serialization.decode(frame)
        record = serialization.decode(bytes(envelope["record"]))
        record["digest"] = b"\x00" * 32
        forged = serialization.encode(
            {
                "record": serialization.encode(record),
                "sig": bytes(envelope["sig"]),
            }
        )
        with pytest.raises(AuthenticationError):
            completed.enclaves[member].ecall(
                "verify_broadcast_echo", "prime", leader, forged, label="test"
            )

    def test_spliced_record_rejected(self, completed):
        # A genuine record relayed under the wrong stage or sender name
        # must not verify: the signed context pins both.
        leader = completed.leader_id
        member = next(m for m in completed.member_ids if m != leader)
        frame = completed.enclaves[leader].ecall(
            "export_broadcast_echo", "prime", label="test"
        )
        with pytest.raises(ProtocolError):
            completed.enclaves[member].ecall(
                "verify_broadcast_echo",
                "double_prime",
                leader,
                frame,
                label="test",
            )
        with pytest.raises(ProtocolError):
            completed.enclaves[member].ecall(
                "verify_broadcast_echo", "prime", member, frame, label="test"
            )


class TestTranscriptDivergence:
    def test_bogus_leader_claims_fail_closed(self, cohort, base_config):
        # The leader's raw channel lets us protect a syntactically valid
        # transcript request carrying digests the member cannot have —
        # the member must refuse to attest.
        federation = _build(cohort, base_config)
        GenDPRProtocol(federation).run()
        leader = federation.leader_id
        member = next(m for m in federation.member_ids if m != leader)
        channel = federation.enclaves[leader]._channels[member]
        bogus = channel.protect(
            serialization.encode(
                {
                    "stage": "prime",
                    "send": b"\x00" * 32,
                    "recv": b"\x00" * 32,
                }
            ),
            kind=b"transcript",
        )
        with pytest.raises(TranscriptDivergenceError):
            federation.enclaves[member].ecall(
                "answer_transcript", bogus, label="test"
            )


class TestCheckpointFreshness:
    def test_stale_checkpoint_rejected(self, cohort, base_config):
        federation = _build(cohort, base_config)
        leader_enclave = federation.enclaves[federation.leader_id]
        old = leader_enclave.ecall("checkpoint_state", label="test")
        fresh = leader_enclave.ecall("checkpoint_state", label="test")
        with pytest.raises(StaleCheckpointError):
            leader_enclave.ecall("restore_state", old, label="test")
        leader_enclave.ecall("restore_state", fresh, label="test")

    def test_corrupted_checkpoint_fails_sealed(self, cohort, base_config):
        federation = _build(cohort, base_config)
        leader_enclave = federation.enclaves[federation.leader_id]
        blob = leader_enclave.ecall("checkpoint_state", label="test")
        mid = len(blob.data) // 2
        tampered = dataclasses.replace(
            blob,
            data=blob.data[:mid]
            + bytes([blob.data[mid] ^ 0x01])
            + blob.data[mid + 1 :],
        )
        with pytest.raises(SealingError):
            leader_enclave.ecall("restore_state", tampered, label="test")

    def test_epoch_survives_leader_replacement(self, cohort, base_config):
        # The counter belongs to the *platform*: a replacement enclave
        # must still reject blobs its crashed predecessor superseded.
        federation = _build(cohort, base_config)
        leader_enclave = federation.enclaves[federation.leader_id]
        old = leader_enclave.ecall("checkpoint_state", label="test")
        leader_enclave.ecall("checkpoint_state", label="test")
        federation.replace_leader_enclave()
        with pytest.raises(StaleCheckpointError):
            federation.leader_host.enclave.ecall(
                "restore_state", old, label="test"
            )

    def test_monotonic_counter(self):
        from repro.errors import AttestationError

        counter = MonotonicCounter("unit")
        assert counter.value == 0
        assert counter.advance() == 1
        assert counter.advance() == 2
        assert counter.value == 2
        with pytest.raises(AttestationError):
            MonotonicCounter("")


class TestClassification:
    def test_each_violation_maps_to_its_counter(self):
        cases = [
            (EquivocationError("x"), "equivocations_detected"),
            (TranscriptDivergenceError("x"), "transcript_divergences"),
            (StaleCheckpointError("x"), "stale_checkpoints_rejected"),
            (SealingError("x"), "sealed_restore_failures"),
            (IntegrityError("x"), "quarantines"),
        ]
        for error, expected in cases:
            assert classify_violation(error) == expected
            assert expected in COUNTER_NAMES

    def test_non_violation_refused(self):
        with pytest.raises(ProtocolError):
            classify_violation(ValueError("not ours"))
        with pytest.raises(ProtocolError):
            classify_violation(ResilienceError("crash, not Byzantine"))

    def test_monitor_counts_at_detection_site(self):
        monitor = IntegrityMonitor()
        monitor.record_detection(EquivocationError("x"))
        monitor.record_detection(StaleCheckpointError("x"))
        counters = monitor.counters()
        assert counters["equivocations_detected"] == 1
        assert counters["stale_checkpoints_rejected"] == 1
        assert monitor.detections == 2
        assert counters["quarantines"] == 0

    def test_integrity_error_hierarchy(self):
        # Supervisor and chaos verdicts rely on these subtype facts.
        assert issubclass(EquivocationError, IntegrityError)
        assert issubclass(TranscriptDivergenceError, IntegrityError)
        assert issubclass(StaleCheckpointError, IntegrityError)
        assert not issubclass(SealingError, IntegrityError)


class TestEndToEnd:
    def test_integrity_on_changes_no_release_decision(
        self, cohort, base_config, reference
    ):
        config = dataclasses.replace(
            base_config, integrity=IntegrityConfig.on()
        )
        federation = _build(cohort, config)
        result = GenDPRProtocol(federation).run()
        assert result.l_prime == reference.l_prime
        assert result.l_double_prime == reference.l_double_prime
        assert result.l_safe == reference.l_safe
        assert federation.integrity_monitor.detections == 0
        assert federation.integrity_monitor.quarantined() == []

    def test_unsupervised_equivocation_aborts_counted(
        self, cohort, base_config
    ):
        config = dataclasses.replace(
            base_config,
            integrity=IntegrityConfig.on(),
            faults=FaultConfig.byzantine(
                7, intensity=0.0, equivocate_rate=1.0
            ),
        )
        federation = _build(cohort, config)
        with pytest.raises(EquivocationError) as excinfo:
            GenDPRProtocol(federation).run()
        assert excinfo.value.stage
        counters = federation.integrity_monitor.counters()
        assert counters["equivocations_detected"] >= 1
        assert federation.fault_injector.counters()["equivocations"] >= 1

    def test_supervised_equivocation_recovers_or_aborts_typed(
        self, cohort, base_config, reference
    ):
        config = dataclasses.replace(
            base_config,
            integrity=IntegrityConfig.on(),
            resilience=ResilienceConfig.supervised(max_failovers=3),
            faults=FaultConfig.byzantine(
                7, intensity=0.0, equivocate_rate=0.3
            ),
        )
        federation = _build(cohort, config)
        try:
            result = GenDPRProtocol(federation).run()
        except IntegrityError:
            assert federation.failovers == 3
        else:
            assert result.l_safe == reference.l_safe
        monitor = federation.integrity_monitor
        assert monitor.counters()["equivocations_detected"] >= 1
        assert monitor.quarantined()
        report = monitor.quarantined()[0]
        assert report.cause == "EquivocationError"
        assert report.member_id

    def test_report_surfaces_quarantine_and_counters(
        self, cohort, base_config
    ):
        from repro.config import ObservabilityConfig
        from repro.core.leader import elect_leader

        # A stale-checkpoint plan: the rolled-back restore is rejected,
        # recovery completes, and the report must carry both the
        # integrity counters and the quarantine record.
        leader = elect_leader(
            [f"gdo-{i}" for i in range(MEMBERS)],
            base_config.seed,
            base_config.study_id,
        )
        config = dataclasses.replace(
            base_config,
            integrity=IntegrityConfig.on(),
            observability=ObservabilityConfig.tracing(),
            resilience=ResilienceConfig.supervised(max_failovers=3),
            faults=FaultConfig.byzantine(
                9,
                intensity=0.0,
                checkpoint_tamper="stale",
                crash_points=((leader, 5),),
            ),
        )
        federation = _build(cohort, config)
        result = GenDPRProtocol(federation).run()
        assert (
            federation.integrity_monitor.counters()[
                "stale_checkpoints_rejected"
            ]
            >= 1
        )
        report = result.observability
        assert report is not None
        counters = report.metrics["counters"]
        assert counters["integrity.stale_checkpoints_rejected"] >= 1
        assert counters["integrity.quarantines"] >= 1
        quarantined = report.meta["quarantined"]
        assert quarantined[0]["cause"] == "StaleCheckpointError"
        assert "Quarantined nodes" in report.render()

    def test_run_report_carries_integrity_counters(
        self, cohort, base_config
    ):
        from repro.config import ObservabilityConfig
        from repro.obs.report import FINGERPRINT_EXCLUDED_FIELDS

        config = dataclasses.replace(
            base_config,
            integrity=IntegrityConfig.on(),
            observability=ObservabilityConfig.tracing(),
        )
        federation = _build(cohort, config)
        result = GenDPRProtocol(federation).run()
        report = result.observability
        assert report is not None
        counters = report.metrics["counters"]
        assert counters["integrity.equivocations_detected"] == 0
        assert "quarantined" not in report.meta
        assert "integrity" in FINGERPRINT_EXCLUDED_FIELDS


class TestReplyRouterDedup:
    def test_two_generation_dedup_and_high_water(self):
        from repro.core.resilience import _ReplyRouter
        from repro.net import Envelope, SimulatedNetwork

        network = SimulatedNetwork()
        network.register("leader")
        network.register("m1")

        def send(body, tag="round-1"):
            network.send(
                Envelope(
                    sender="m1", receiver="leader", tag=tag, body=body
                )
            )

        router = _ReplyRouter(network, "leader")
        router.begin_round("round-1", {"m1"})
        send(b"reply")
        send(b"reply")  # duplicate in the same round
        router.pump()
        assert router.replies() == {"m1": b"reply"}
        assert router.discarded == 1

        # One rotation later the frame is in the previous generation
        # and still deduplicated; its hash memory survives the round.
        router.begin_round("round-2", {"m1"})
        send(b"reply", tag="round-2")
        router.pump()
        assert not router.has_reply("m1")

        # Two rotations later the hash has been forgotten — bounded
        # memory — and only the tag mismatch rejects the stale frame.
        router.begin_round("round-3", {"m1"})
        send(b"reply", tag="round-2")
        router.pump()
        assert not router.has_reply("m1")
        assert router.seen_high_water >= 1

    def test_exchange_stats_surface_high_water(self, cohort, base_config):
        config = dataclasses.replace(
            base_config, resilience=ResilienceConfig.supervised()
        )
        federation = _build(cohort, config)
        protocol = GenDPRProtocol(federation)
        protocol.run()
        stats = protocol._supervision
        assert stats["failovers"] == 0
