"""The fault injector: applies a :class:`FaultPlan` to a live run.

The injector sits behind two hooks, both disabled by default:

* :meth:`SimulatedNetwork.install_fault_injector` routes every
  ``send`` through :meth:`FaultInjector.on_send`, which may drop,
  duplicate, delay or corrupt the envelope, or fail the operation for
  a partition window.
* :func:`repro.tee.enclave.guarded` accepts the injector's
  :meth:`on_ecall` as an ECALL interceptor, which tears an enclave
  down at a planned crash point.

Every injected event is counted, appended to a bounded event log for
the fault-injection report, and traced through :data:`repro.obs.TRACER`
when observability is on.  All bookkeeping lives behind one lock; the
decisions themselves are pure plan lookups, so worker threads cannot
perturb the schedule.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Tuple

from ..errors import NetworkError
from ..net.message import Envelope
from ..obs.tracer import TRACER
from ..tee.sealing import SealedBlob
from .plan import CORRUPT, DELAY, DROP, DUPLICATE, REPLAY, WITHHOLD, FaultPlan

#: Cap on the per-run injected-event log (counters are never capped).
_EVENT_LOG_LIMIT = 10_000


class FaultInjector:
    """Applies one :class:`FaultPlan` to a network and a set of enclaves."""

    def __init__(self, plan: FaultPlan, *, leader_id: Optional[str] = None):
        self._plan = plan
        #: Corruption is only applied on the leader → member request leg
        #: (see FaultConfig.corrupt_rate); a corrupt draw on a reply leg
        #: degrades to a drop, modelling the transport integrity check
        #: discarding the record.
        self._leader_id = leader_id
        self._network = None
        self._lock = threading.Lock()
        self._link_index: Dict[Tuple[str, str], int] = {}
        self._ecall_index: Dict[str, int] = {}
        self._consumed_crash_points: set = set()
        self._round_index = 0
        self._round_kind = ""
        #: node_id -> send operations still to block (active partitions).
        self._partition_budget: Dict[str, int] = {}
        self._pending_delayed: List[Envelope] = []
        #: Last *valid* envelope delivered per link — the material a
        #: Byzantine host replays.  One per link bounds the memory.
        self._link_history: Dict[Tuple[str, str], Envelope] = {}
        #: Checkpoint-tamper state (see on_checkpoint/checkpoint_for_restore).
        self._first_checkpoint: Optional[SealedBlob] = None
        self._stale_served = False
        #: Cached compromised-broadcaster model — one instance per run,
        #: so attempt counters persist across leader failovers.
        self._equivocator: Optional["BroadcastEquivocator"] = None
        #: Cached compromised-shard-emitter model, same lifetime rules
        #: (attempt counters survive enclave replacement after a crash).
        self._shard_equivocator: Optional["ShardEquivocator"] = None
        self._counters: Dict[str, int] = {
            "drops": 0,
            "duplicates": 0,
            "delays": 0,
            "corruptions": 0,
            "partition_blocks": 0,
            "crashes": 0,
            "released_delayed": 0,
            "flushed_in_flight": 0,
            "replays": 0,
            "withholds": 0,
            "equivocations": 0,
            "shard_equivocations": 0,
            "checkpoint_tampers": 0,
        }
        self._events: List[Dict[str, object]] = []

    @property
    def plan(self) -> FaultPlan:
        return self._plan

    def attach(self, network) -> None:
        """Bind to the network whose deliveries this injector mediates."""
        self._network = network

    def set_leader(self, leader_id: str) -> None:
        self._leader_id = leader_id

    # -- bookkeeping -----------------------------------------------------------

    def _record(self, action: str, counter: str, **attributes: object) -> None:
        self._counters[counter] += 1
        if len(self._events) < _EVENT_LOG_LIMIT:
            self._events.append(
                dict(attributes, action=action, round=self._round_index)
            )
        if TRACER.enabled:
            TRACER.event(f"fault.{action}", round=self._round_index, **attributes)

    # -- round lifecycle -------------------------------------------------------

    def begin_round(self, kind: str) -> int:
        """Advance the OCALL round counter; activate partition windows."""
        with self._lock:
            self._round_index += 1
            self._round_kind = kind
            for window in self._plan.partition_windows:
                if window.start_round == self._round_index:
                    budget = self._partition_budget.get(window.node_id, 0)
                    self._partition_budget[window.node_id] = (
                        budget + window.blocked_ops
                    )
                    self._record(
                        "partition_begin",
                        "partition_blocks",
                        node=window.node_id,
                        blocked_ops=window.blocked_ops,
                    )
                    # partition_begin is informational; the counter
                    # tracks blocked operations, so undo the increment.
                    self._counters["partition_blocks"] -= 1
            return self._round_index

    # -- network hook ----------------------------------------------------------

    def on_send(self, envelope: Envelope) -> None:
        """Mediate one delivery; called by ``SimulatedNetwork.send``.

        Either delivers (one or two copies, possibly corrupted), holds
        the envelope for a later :meth:`release_delayed`, silently
        drops it, or raises :class:`NetworkError` for an active
        partition window.
        """
        network = self._network
        if network is None:
            raise NetworkError("fault injector is not attached to a network")
        link = (envelope.sender, envelope.receiver)
        with self._lock:
            index = self._link_index.get(link, 0) + 1
            self._link_index[link] = index
            blocked = self._partition_blocked(envelope)
            if blocked:
                self._record(
                    "partition_block",
                    "partition_blocks",
                    node=blocked,
                    sender=envelope.sender,
                    receiver=envelope.receiver,
                    tag=envelope.tag,
                )
        if blocked:
            raise NetworkError(
                f"node {blocked!r} is partitioned (fault window)"
            )
        action = self._plan.action_for(envelope.sender, envelope.receiver, index)
        if action == CORRUPT and (
            self._leader_id is not None and envelope.sender != self._leader_id
        ):
            action = DROP
        if action == WITHHOLD and self._plan.withhold_target and (
            self._plan.withhold_target not in link
        ):
            # Targeted withholding: links not touching the target are
            # left alone (the adversary spends its budget selectively).
            action = None
        if action is None:
            network._deliver(envelope)
            with self._lock:
                self._link_history[link] = envelope
            return
        context = {
            "sender": envelope.sender,
            "receiver": envelope.receiver,
            "tag": envelope.tag,
            "link_index": index,
        }
        if action == DROP:
            with self._lock:
                self._record("drop", "drops", **context)
        elif action == DUPLICATE:
            network._deliver(envelope)
            network._deliver(
                Envelope(
                    sender=envelope.sender,
                    receiver=envelope.receiver,
                    tag=envelope.tag,
                    body=envelope.body,
                )
            )
            with self._lock:
                self._record("duplicate", "duplicates", **context)
        elif action == DELAY:
            with self._lock:
                self._pending_delayed.append(envelope)
                self._record("delay", "delays", **context)
        elif action == CORRUPT:
            offset = self._plan.corrupt_offset(
                envelope.sender, envelope.receiver, index, len(envelope.body)
            )
            corrupted = bytearray(envelope.body)
            if corrupted:
                corrupted[offset] ^= 0x80
            network._deliver(
                Envelope(
                    sender=envelope.sender,
                    receiver=envelope.receiver,
                    tag=envelope.tag,
                    body=bytes(corrupted),
                )
            )
            with self._lock:
                self._record("corrupt", "corruptions", offset=offset, **context)
        elif action == REPLAY:
            # Deliver the genuine frame, then re-play the previous valid
            # frame on the same link: authenticated-but-stale traffic the
            # receiver must reject (channel sequencing) or absorb (dedup).
            network._deliver(envelope)
            with self._lock:
                earlier = self._link_history.get(link)
                self._link_history[link] = envelope
            if earlier is not None:
                network._deliver(
                    Envelope(
                        sender=earlier.sender,
                        receiver=earlier.receiver,
                        tag=earlier.tag,
                        body=earlier.body,
                    )
                )
                with self._lock:
                    self._record("replay", "replays", **context)
        elif action == WITHHOLD:
            with self._lock:
                self._record("withhold", "withholds", **context)

    def _partition_blocked(self, envelope: Envelope) -> Optional[str]:
        """The partitioned endpoint blocking this send, if any (locked)."""
        for node in (envelope.sender, envelope.receiver):
            budget = self._partition_budget.get(node, 0)
            if budget > 0:
                self._partition_budget[node] = budget - 1
                return node
        return None

    def release_delayed(self, node_id: str) -> int:
        """Deliver held envelopes involving ``node_id`` (backoff tick).

        Models the delayed frames finally arriving once the retrying
        peer has waited out its timeout.  Returns the number released.
        """
        network = self._network
        with self._lock:
            due = [
                e
                for e in self._pending_delayed
                if node_id in (e.sender, e.receiver)
            ]
            if not due:
                return 0
            self._pending_delayed = [
                e for e in self._pending_delayed if e not in due
            ]
            self._counters["released_delayed"] += len(due)
        for envelope in due:
            network._deliver(envelope)
            if TRACER.enabled:
                TRACER.event(
                    "fault.release_delayed",
                    sender=envelope.sender,
                    receiver=envelope.receiver,
                    tag=envelope.tag,
                )
        return len(due)

    def reset_in_flight(self) -> int:
        """Discard held envelopes (failover flush); returns the count."""
        with self._lock:
            flushed = len(self._pending_delayed)
            self._pending_delayed = []
            self._counters["flushed_in_flight"] += flushed
        return flushed

    # -- Byzantine hooks -------------------------------------------------------

    def equivocation_adversary(self) -> Optional["BroadcastEquivocator"]:
        """The compromised-broadcaster model, or ``None`` when unarmed.

        Installed into the leader enclave at provisioning time (and
        re-installed into every replacement enclave, so per-broadcast
        attempt counters persist across failovers).
        """
        if self._plan.equivocate_rate <= 0.0:
            return None
        if self._equivocator is None:
            self._equivocator = BroadcastEquivocator(self)
        return self._equivocator

    def record_equivocation(self, **attributes: object) -> None:
        with self._lock:
            self._record("equivocate", "equivocations", **attributes)

    def shard_adversary(self) -> Optional["ShardEquivocator"]:
        """The compromised-shard-emitter model, or ``None`` when unarmed.

        Installed into the targeted member enclave at provisioning time
        and re-installed into a crash-replacement enclave (the platform
        stays compromised); a *quarantine* replacement installs a fresh
        attested module instead, which is what lets a detected
        equivocation resolve into a clean completion.
        """
        if self._plan.shard_flip_rate <= 0.0:
            return None
        if self._shard_equivocator is None:
            self._shard_equivocator = ShardEquivocator(self)
        return self._shard_equivocator

    def record_shard_equivocation(self, **attributes: object) -> None:
        with self._lock:
            self._record("shard_equivocate", "shard_equivocations", **attributes)

    def on_checkpoint(self, blob: Optional[SealedBlob]) -> None:
        """Observe a sealed checkpoint (the host stores them anyway).

        The tampering host keeps the *first* blob around as rollback
        material for :meth:`checkpoint_for_restore`.
        """
        if blob is None or not self._plan.checkpoint_tamper:
            return
        with self._lock:
            if self._first_checkpoint is None:
                self._first_checkpoint = blob

    def checkpoint_for_restore(
        self, latest: Optional[SealedBlob]
    ) -> Optional[SealedBlob]:
        """The blob the (possibly tampering) host serves for a restore.

        ``"corrupt"`` always serves a bit-flipped copy (unsealing fails
        closed every time, so the failover budget runs out).  ``"stale"``
        serves the oldest sealed checkpoint exactly once — the rollback
        replay the platform counter rejects — after which the honest
        blob is served and the study recovers; ``"stale_persistent"``
        serves it on every restore, forcing a classified abort.
        """
        mode = self._plan.checkpoint_tamper
        if not mode or latest is None:
            return latest
        if mode == "corrupt":
            data = bytearray(latest.data)
            data[len(data) // 2] ^= 0x01
            with self._lock:
                self._record(
                    "checkpoint_corrupt", "checkpoint_tampers", label=latest.label
                )
            return SealedBlob(
                data=bytes(data), label=latest.label, context=latest.context
            )
        with self._lock:
            first = self._first_checkpoint
            if first is None or first.data == latest.data:
                return latest
            if mode == "stale" and self._stale_served:
                return latest
            self._stale_served = True
            self._record(
                "checkpoint_stale", "checkpoint_tampers", label=first.label
            )
        return first

    # -- enclave hook ----------------------------------------------------------

    def on_ecall(self, enclave, name: str) -> None:
        """ECALL interceptor: crash the enclave at a planned crash point.

        The crash happens *before* the dispatch, so the intercepted
        ECALL itself raises :class:`EnclaveCrashedError` — the host
        observes a mid-operation enclave loss, exactly the paper's
        leader-crash scenario.
        """
        with self._lock:
            index = self._ecall_index.get(enclave.enclave_id, 0) + 1
            self._ecall_index[enclave.enclave_id] = index
            crash = None
            for point in self._plan.crash_points:
                if (
                    point.enclave_id == enclave.enclave_id
                    and point.ecall_index == index
                    and point not in self._consumed_crash_points
                ):
                    crash = point
                    break
            if crash is not None:
                self._consumed_crash_points.add(crash)
                self._record(
                    "crash",
                    "crashes",
                    enclave=enclave.enclave_id,
                    ecall=name,
                    ecall_index=index,
                )
        if crash is not None:
            enclave.crash()

    # -- reporting -------------------------------------------------------------

    def counters(self) -> Dict[str, int]:
        with self._lock:
            return dict(self._counters)

    @property
    def injected_faults(self) -> int:
        """Total faults injected so far (partitions count per blocked op)."""
        with self._lock:
            return (
                self._counters["drops"]
                + self._counters["duplicates"]
                + self._counters["delays"]
                + self._counters["corruptions"]
                + self._counters["partition_blocks"]
                + self._counters["crashes"]
                + self._counters["replays"]
                + self._counters["withholds"]
                + self._counters["equivocations"]
                + self._counters["shard_equivocations"]
                + self._counters["checkpoint_tampers"]
            )

    def report(self) -> Dict[str, object]:
        """Machine-readable fault-injection report (CI artifact payload)."""
        with self._lock:
            return {
                "plan": self._plan.describe(),
                "counters": dict(self._counters),
                "rounds": self._round_index,
                "events": [dict(e) for e in self._events],
                "event_log_truncated": len(self._events) >= _EVENT_LOG_LIMIT,
            }


class BroadcastEquivocator:
    """Models a compromised leader-side trusted module that equivocates.

    A Byzantine *host* cannot forge AEAD frames, so sending different
    followers different (individually well-authenticated) broadcast
    bodies requires the broadcasting module itself to be adversarial.
    The federation installs this hook into the leader enclave when the
    plan arms ``equivocate_rate``; the enclave consults it per
    ``(stage, member)`` while building broadcast frames.

    Draws are pure plan lookups keyed by the per-pair attempt number,
    so a run replays exactly, while a post-failover re-broadcast (a new
    attempt) may draw clean and let the study complete bit-identically.
    """

    def __init__(self, injector: FaultInjector):
        self._injector = injector
        self._lock = threading.Lock()
        self._attempts: Dict[Tuple[str, str], int] = {}

    def mutate(self, stage: str, member: str, snps: List[int]) -> List[int]:
        """The SNP list actually sent to ``member`` for ``stage``."""
        with self._lock:
            attempt = self._attempts.get((stage, member), 0) + 1
            self._attempts[(stage, member)] = attempt
        if not self._injector.plan.equivocate_for(stage, member, attempt):
            return list(snps)
        self._injector.record_equivocation(
            stage=stage, member=member, attempt=attempt
        )
        # Any deterministic divergence works; drop the tail SNP (or
        # invent one when the list is empty) so digests cannot match.
        return list(snps[:-1]) if snps else [0]


class ShardEquivocator:
    """Models a compromised member module falsifying shard partials.

    A Byzantine interior node of the combine tree cannot forge its
    children's AEAD frames, but a compromised trusted module *can* lie
    about its own leaf statistics before folding them in — an in-bounds
    lie that passes every shape and bound check on the ingest path.  The
    federation installs this hook into the ``shard_flip_target`` member
    when the plan arms ``shard_flip_rate``; the enclave consults it per
    ``(kind, shard)`` leaf computation.

    Draws are keyed by a per-task attempt counter, so the integrity
    layer's verification re-run of the same shard task is a *fresh*
    attempt — the lie draws differently across the two runs, which is
    exactly what the dual-run leaf-commitment comparison detects.  A
    module that lies identically on every attempt is indistinguishable
    from honest data and stays out of the model (documented in
    ``docs/RESILIENCE.md``).
    """

    def __init__(self, injector: FaultInjector):
        self._injector = injector
        self._lock = threading.Lock()
        self._attempts: Dict[Tuple[str, int], int] = {}

    @property
    def target(self) -> str:
        return self._injector.plan.shard_flip_target

    def mutate(self, kind: str, shard: int, stats):
        """The leaf statistics the module actually folds and emits.

        ``stats`` is the honest int64 partial; the falsified copy stays
        in bounds (one positive entry decremented) so only the
        commitment cross-check — never a shape or bound guard — can
        expose it.
        """
        with self._lock:
            attempt = self._attempts.get((kind, shard), 0) + 1
            self._attempts[(kind, shard)] = attempt
        if not self._injector.plan.shard_flip_for(kind, shard, attempt):
            return stats
        flat = stats.reshape(-1)
        positive = [i for i in range(flat.shape[0]) if flat[i] > 0]
        forged = stats.copy()
        if positive:
            forged.reshape(-1)[positive[attempt % len(positive)]] -= 1
        else:
            # An all-zero leaf has nothing to decrement; leave it alone
            # (the draw is still counted as an attempt, not an event).
            return stats
        self._injector.record_shard_equivocation(
            kind=kind, shard=shard, attempt=attempt
        )
        return forged
