"""Configuration of the long-lived federation service."""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ConfigError(message)


@dataclass(frozen=True)
class ServiceConfig:
    """Sizing and admission parameters of a :class:`FederationService`.

    Attributes:
        num_members: federation size every warm substrate is provisioned
            for; every submitted study runs over this many GDOs.
        pool_size: warm substrates kept attested and ready.
        max_active: studies executing concurrently; bounded by
            ``pool_size`` since every running study owns one slot.
        queue_limit: submissions allowed to wait for a slot; one more
            raises :class:`~repro.errors.ServiceOverloadedError`.
        max_concurrent_rounds: OCALL rounds in flight across all
            sessions — the fair scheduler's bounded enclave budget.
        enclave_memory_budget_bytes: pool-wide trusted-memory admission
            ceiling (from :mod:`repro.tee.resources` metering); ``0``
            disables the check.
        service_id: namespace root for pool network scopes and RNG
            streams.
        seed: base seed for substrate provisioning RNG streams.
    """

    num_members: int = 3
    pool_size: int = 2
    max_active: int = 2
    queue_limit: int = 8
    max_concurrent_rounds: int = 2
    enclave_memory_budget_bytes: int = 0
    service_id: str = "service-0"
    seed: int = 0

    def __post_init__(self) -> None:
        _require(self.num_members >= 1, "a federation needs at least 1 member")
        _require(self.pool_size >= 1, "the pool needs at least 1 slot")
        _require(self.max_active >= 1, "max_active must be at least 1")
        _require(
            self.max_active <= self.pool_size,
            "max_active cannot exceed pool_size (each running study owns "
            "a slot)",
        )
        _require(self.queue_limit >= 0, "queue_limit must be non-negative")
        _require(
            self.max_concurrent_rounds >= 1,
            "max_concurrent_rounds must be at least 1",
        )
        _require(
            self.enclave_memory_budget_bytes >= 0,
            "enclave_memory_budget_bytes must be non-negative",
        )
        _require(bool(self.service_id), "service_id must be non-empty")
        _require(
            "//" not in self.service_id,
            "service_id may not contain the network namespace separator",
        )
