"""Corpus pool: minimal covering example per behaviour unit.

Mirrors the hypofuzz pool tests: adding examples maintains the
invariants (every cover points at a stored genome, every stored genome
minimally covers something, credited units were actually produced),
simpler genomes evict baroque incumbents, and pruning drops genomes
that stopped covering anything.  The wire format round-trips and
rejects malformed documents.
"""

from __future__ import annotations

import pytest

from repro.config import FaultConfig
from repro.errors import ConfigError, CorpusInvariantError
from repro.fuzz.corpus import CORPUS_FORMAT, CorpusPool, merge_behaviours
from repro.fuzz.coverage import Behaviour
from repro.fuzz.genome import PlanGenome


def _genome(**faults) -> PlanGenome:
    return PlanGenome(faults=FaultConfig(enabled=True, seed=1, **faults))


def _behaviour(*counters, arcs=()) -> Behaviour:
    return Behaviour(
        counters=frozenset(counters), arcs=frozenset(arcs)
    )


SIMPLE = _genome(drop_rate=0.01)
RICHER = _genome(drop_rate=0.05, delay_rate=0.05)
BAROQUE = _genome(
    drop_rate=0.2,
    delay_rate=0.12,
    crash_points=(("gdo-0", 4),),
)


def test_new_units_are_adopted_and_keys_tracked():
    pool = CorpusPool()
    assert pool.add(SIMPLE, _behaviour("faults.drops", "outcome.completed"))
    assert pool.units() == {"faults.drops", "outcome.completed"}
    assert len(pool) == 1
    assert pool.cover_of("faults.drops") == SIMPLE
    assert len(pool.behaviour_keys()) == 1


def test_empty_behaviour_changes_nothing():
    pool = CorpusPool()
    assert not pool.add(SIMPLE, _behaviour())
    assert len(pool) == 0
    # ... but the behaviour key is still recorded for the frontier.
    assert len(pool.behaviour_keys()) == 1


def test_simpler_genome_evicts_incumbent_cover():
    pool = CorpusPool()
    pool.add(BAROQUE, _behaviour("faults.drops"))
    assert pool.cover_of("faults.drops") == BAROQUE
    assert pool.add(SIMPLE, _behaviour("faults.drops"))
    assert pool.cover_of("faults.drops") == SIMPLE
    # The baroque genome covered nothing anymore: pruned.
    assert len(pool) == 1


def test_baroque_genome_kept_only_for_its_novel_units():
    pool = CorpusPool()
    pool.add(SIMPLE, _behaviour("faults.drops"))
    assert pool.add(
        BAROQUE, _behaviour("faults.drops", "faults.crashes")
    )
    assert pool.cover_of("faults.drops") == SIMPLE
    assert pool.cover_of("faults.crashes") == BAROQUE
    assert len(pool) == 2


def test_duplicate_add_is_a_no_op():
    pool = CorpusPool()
    behaviour = _behaviour("faults.drops")
    assert pool.add(SIMPLE, behaviour)
    assert not pool.add(SIMPLE, behaviour)
    assert len(pool) == 1


def test_equally_complex_genome_does_not_thrash():
    pool = CorpusPool()
    pool.add(SIMPLE, _behaviour("faults.drops"))
    other = _genome(duplicate_rate=0.01)
    changed = pool.add(other, _behaviour("faults.drops"))
    # One of the two wins by the deterministic tiebreak and stays.
    assert pool.cover_of("faults.drops") in (SIMPLE, other)
    pool._check_invariants()
    assert len(pool) == 1
    assert changed in (True, False)


def test_arc_units_and_counter_units_are_separated():
    pool = CorpusPool()
    pool.add(
        SIMPLE,
        _behaviour(
            "faults.drops", arcs=(("repro.faults.plan", 10, 11),)
        ),
    )
    assert pool.counter_units() == {"faults.drops"}
    assert pool.arc_units() == {"arc:repro.faults.plan:10:11"}


def test_genomes_listed_simplest_first():
    pool = CorpusPool()
    pool.add(BAROQUE, _behaviour("faults.crashes"))
    pool.add(SIMPLE, _behaviour("faults.drops"))
    pool.add(RICHER, _behaviour("faults.delays"))
    assert pool.genomes() == [SIMPLE, RICHER, BAROQUE]


def test_invariant_checker_trips_on_corrupted_state():
    pool = CorpusPool()
    pool.add(SIMPLE, _behaviour("faults.drops"))
    pool._covers["faults.ghost"] = "no-such-digest"
    with pytest.raises(CorpusInvariantError):
        pool._check_invariants()


def test_invariant_checker_trips_on_uncredited_unit():
    pool = CorpusPool()
    pool.add(SIMPLE, _behaviour("faults.drops"))
    digest = SIMPLE.digest()
    pool._covers["faults.never_produced"] = digest
    with pytest.raises(CorpusInvariantError):
        pool._check_invariants()


def test_wire_format_roundtrip_and_rejection():
    pool = CorpusPool()
    pool.add(
        SIMPLE,
        _behaviour(
            "faults.drops", arcs=(("repro.faults.plan", 10, 11),)
        ),
    )
    doc = pool.to_json_dict()
    assert doc["format"] == CORPUS_FORMAT
    assert doc["summary"]["genomes"] == 1
    pairs = CorpusPool.entries_from_json(doc)
    assert len(pairs) == 1
    genome, summary = pairs[0]
    assert genome == SIMPLE
    assert summary["counters"] == ["faults.drops"]
    assert summary["arc_count"] == 1
    with pytest.raises(ConfigError):
        CorpusPool.entries_from_json({"format": 999, "entries": []})
    with pytest.raises(ConfigError):
        CorpusPool.entries_from_json(
            {"format": CORPUS_FORMAT, "entries": [{"behaviour": {}}]}
        )


def test_merge_behaviours_unions_units():
    merged = merge_behaviours(
        [
            _behaviour("a"),
            _behaviour("b", arcs=(("m", 1, 2),)),
        ]
    )
    assert merged == {"a", "b", "arc:m:1:2"}
