"""``repro fuzz`` — CLI front-end of the coverage-guided chaos fuzzer.

This is the subsystem's only module that touches files or a terminal:
it loads the committed corpus, drives one :class:`FuzzEngine` session
within a time and/or iteration budget, then writes the refreshed
corpus and the JSON report.  Exit codes: ``0`` for a clean session,
``1`` for invariant violations (each reported as a shrunk minimal
reproducer) or usage errors, matching the rest of the CLI.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Optional

from ..errors import ConfigError
from .corpus import CorpusPool
from .engine import FuzzEngine
from .oracle import DecisionOracle


def parse_budget(raw: str) -> float:
    """Parse a wall-clock budget: ``90``, ``90s`` or ``2m``."""
    text = raw.strip().lower()
    scale = 1.0
    if text.endswith("m"):
        scale, text = 60.0, text[:-1]
    elif text.endswith("s"):
        text = text[:-1]
    try:
        seconds = float(text) * scale
    except ValueError:
        raise ConfigError(f"unparseable fuzz budget {raw!r}")
    if seconds <= 0:
        raise ConfigError("fuzz budget must be positive")
    return seconds


def configure_parser(parser: argparse.ArgumentParser) -> None:
    """Attach ``repro fuzz`` arguments to a subcommand parser."""
    parser.add_argument(
        "--budget",
        help="wall-clock budget, e.g. 90s or 2m",
    )
    parser.add_argument(
        "--iterations",
        type=int,
        help="iteration budget (deterministic; combinable with --budget)",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=0,
        help="engine seed: drives every mutation draw (default: 0)",
    )
    parser.add_argument(
        "--corpus-in",
        help="committed corpus JSON to seed from (replayed, not trusted)",
    )
    parser.add_argument(
        "--corpus-out",
        help="write the session's deduplicated corpus here",
    )
    parser.add_argument(
        "--report",
        help="write the session's JSON report here",
    )
    parser.add_argument(
        "--compare-legacy",
        action="store_true",
        help="replay the 42 legacy sweep seeds first and include the "
        "behaviour-key comparison in the report",
    )
    parser.add_argument(
        "--no-coverage",
        action="store_true",
        help="disable arc coverage (counters-only behaviour keys)",
    )
    parser.add_argument(
        "--quiet",
        action="store_true",
        help="suppress per-discovery progress lines",
    )
    parser.set_defaults(func=run_from_args)


def run_from_args(args: argparse.Namespace) -> int:
    if args.budget is None and args.iterations is None:
        print(
            "error: give --budget and/or --iterations", file=sys.stderr
        )
        return 1
    budget = parse_budget(args.budget) if args.budget else None

    def progress(message: str) -> None:
        if not args.quiet:
            print(f"[fuzz] {message}", file=sys.stderr)

    engine = FuzzEngine(
        seed=args.seed,
        oracle=DecisionOracle(),
        coverage=not args.no_coverage,
        progress=progress,
    )

    if args.corpus_in:
        doc = json.loads(Path(args.corpus_in).read_text(encoding="utf-8"))
        seeded = engine.seed_corpus(CorpusPool.entries_from_json(doc))
        progress(
            f"seeded {seeded['entries']} corpus entries "
            f"({seeded['counter_mismatches']} counter mismatches)"
        )
    if args.compare_legacy:
        engine.replay_legacy()

    outcome = engine.run(budget_seconds=budget, max_iterations=args.iterations)
    progress(
        f"fuzzed {outcome['iterations']} iterations in "
        f"{outcome['elapsed_seconds']}s"
    )

    report = engine.report()
    if args.report:
        _write_json(Path(args.report), report)
    if args.corpus_out:
        _write_json(Path(args.corpus_out), engine.pool.to_json_dict())

    coverage = report["coverage"]
    print(
        f"behaviour keys: {coverage['behaviour_keys']}  "
        f"corpus genomes: {coverage['corpus_genomes']}  "
        f"violations: {len(report['violations'])}"
    )
    comparison = report.get("legacy_comparison")
    if comparison:
        print(
            f"legacy comparison: fuzz {comparison['fuzz_keys']} keys vs "
            f"legacy {comparison['legacy_keys']} keys "
            f"(strictly more: {comparison['strictly_more']})"
        )
    for violation in report["violations"]:
        shrunk = violation["shrunk"]
        print(
            f"VIOLATION {violation['violation']}: reproducer "
            f"{shrunk['digest'][:12]} with "
            f"{len(shrunk['active_faults'])} active faults",
            file=sys.stderr,
        )
    return 1 if report["violations"] else 0


def _write_json(path: Path, payload: dict) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(prog="repro-fuzz")
    configure_parser(parser)
    args = parser.parse_args(argv)
    return args.func(args)
