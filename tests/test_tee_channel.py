"""Attested secure channels: handshake, framing, replay protection."""

from __future__ import annotations

import pytest

from repro.crypto.rng import DeterministicRng
from repro.errors import AttestationError, ChannelError
from repro.tee.attestation import AttestationService
from repro.tee.channel import ChannelEndpoint, establish_channel
from repro.tee.enclave import Enclave, ecall


class PairedEnclave(Enclave):
    @ecall
    def noop(self) -> None:
        return None


class RogueEnclave(Enclave):
    @ecall
    def noop(self) -> None:
        return None


def _federation_pair(service=None):
    service = service or AttestationService(master_secret=bytes(32))
    platform_a = service.register_platform("host-a")
    platform_b = service.register_platform("host-b")
    enclave_a = PairedEnclave(platform_a.root_key, "alice")
    enclave_b = PairedEnclave(platform_b.root_key, "bob")
    return service, platform_a, enclave_a, platform_b, enclave_b


def _establish(rng_seed="chan"):
    service, pa, ea, pb, eb = _federation_pair()
    end_a, end_b, hs_bytes = establish_channel(
        ea, pa, eb, pb, service.verifier(), rng=DeterministicRng(rng_seed)
    )
    return end_a, end_b, hs_bytes


class TestHandshake:
    def test_channel_established_and_works(self):
        end_a, end_b, hs_bytes = _establish()
        assert hs_bytes > 0
        frame = end_a.protect(b"hello")
        assert end_b.open(frame) == b"hello"

    def test_bidirectional(self):
        end_a, end_b, _ = _establish()
        assert end_b.open(end_a.protect(b"a->b")) == b"a->b"
        assert end_a.open(end_b.protect(b"b->a")) == b"b->a"

    def test_mismatched_trusted_code_refused(self):
        service = AttestationService(master_secret=bytes(32))
        pa = service.register_platform("host-a")
        pb = service.register_platform("host-b")
        good = PairedEnclave(pa.root_key, "alice")
        rogue = RogueEnclave(pb.root_key, "mallory")
        with pytest.raises(AttestationError):
            establish_channel(
                good, pa, rogue, pb, service.verifier(), rng=DeterministicRng("x")
            )

    def test_unattested_platform_refused(self):
        service, pa, ea, _pb, _eb = _federation_pair()
        foreign_service = AttestationService(master_secret=bytes([9] * 32))
        foreign_platform = foreign_service.register_platform("evil-host")
        foreign_enclave = PairedEnclave(foreign_platform.root_key, "eve")
        with pytest.raises(AttestationError):
            establish_channel(
                ea,
                pa,
                foreign_enclave,
                foreign_platform,
                service.verifier(),
                rng=DeterministicRng("x"),
            )


class TestFraming:
    def test_replayed_frame_rejected(self):
        end_a, end_b, _ = _establish()
        frame = end_a.protect(b"once")
        end_b.open(frame)
        with pytest.raises(ChannelError):
            end_b.open(frame)

    def test_out_of_order_rejected(self):
        end_a, end_b, _ = _establish()
        first = end_a.protect(b"one")
        second = end_a.protect(b"two")
        with pytest.raises(ChannelError):
            end_b.open(second)
        # The first frame still delivers after the failed attempt.
        assert end_b.open(first) == b"one"

    def test_tampered_frame_rejected(self):
        end_a, end_b, _ = _establish()
        frame = bytearray(end_a.protect(b"payload"))
        frame[12] ^= 0x01
        with pytest.raises(ChannelError):
            end_b.open(bytes(frame))

    def test_kind_binding(self):
        end_a, end_b, _ = _establish()
        frame = end_a.protect(b"payload", kind=b"summary")
        with pytest.raises(ChannelError):
            end_b.open(frame, kind=b"lr")

    def test_direction_binding(self):
        end_a, end_b, _ = _establish()
        frame = end_a.protect(b"reflect")
        # Reflecting a frame back to its sender must fail.
        with pytest.raises(ChannelError):
            end_a.open(frame)

    def test_cross_channel_frames_rejected(self):
        end_a1, end_b1, _ = _establish("chan-1")
        end_a2, end_b2, _ = _establish("chan-2")
        frame = end_a1.protect(b"one")
        with pytest.raises(ChannelError):
            end_b2.open(frame)

    def test_closed_channel(self):
        end_a, end_b, _ = _establish()
        end_a.close()
        with pytest.raises(ChannelError):
            end_a.protect(b"x")
        end_b.close()
        with pytest.raises(ChannelError):
            end_b.open(b"\x00" * 80)

    def test_short_frame_rejected(self):
        _end_a, end_b, _ = _establish()
        with pytest.raises(ChannelError):
            end_b.open(b"\x00" * 4)

    def test_overhead_constant(self):
        end_a, _end_b, _ = _establish()
        frame = end_a.protect(bytes(100))
        assert len(frame) - 100 == ChannelEndpoint.overhead()

    def test_duplicate_frame_rejected_channel_stays_usable(self):
        """A duplicated envelope (fault injection, or a resilient
        re-send racing its original) must be rejected by replay
        protection without poisoning the channel."""
        end_a, end_b, _ = _establish()
        frame = end_a.protect(b"first")
        assert end_b.open(frame) == b"first"
        with pytest.raises(ChannelError):
            end_b.open(frame)
        # The duplicate did not advance the receive counter: the next
        # fresh frame still opens.
        follow_up = end_a.protect(b"second")
        assert end_b.open(follow_up) == b"second"

    def test_many_duplicates_then_fresh_traffic(self):
        end_a, end_b, _ = _establish()
        frame = end_a.protect(b"once")
        assert end_b.open(frame) == b"once"
        for _ in range(5):
            with pytest.raises(ChannelError):
                end_b.open(frame)
        assert end_b.open(end_a.protect(b"still fine")) == b"still fine"

    def test_forged_frame_chains_authentication_error(self):
        end_a, end_b, _ = _establish()
        original = end_a.protect(b"payload")
        forged = bytearray(original)
        forged[-1] ^= 0xFF  # flip a tag byte
        from repro.errors import AuthenticationError

        with pytest.raises(ChannelError) as excinfo:
            end_b.open(bytes(forged))
        assert isinstance(excinfo.value.__cause__, AuthenticationError)
        # The rejected frame consumed nothing: the genuine copy (an
        # idempotent re-send of the same sequence number) still opens.
        assert end_b.open(original) == b"payload"

    def test_long_sequence(self):
        end_a, end_b, _ = _establish()
        for i in range(50):
            payload = f"message-{i}".encode()
            assert end_b.open(end_a.protect(payload)) == payload
