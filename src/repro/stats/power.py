"""Analytical detection power of the LR membership test.

The empirical search in :mod:`repro.stats.lr_test` is what the protocol
runs; this module provides the closed-form normal approximation of the
same detector, used for

* the ablation benchmark comparing analytical vs empirical selection,
* fast sanity checks in property tests (the two must agree on clearly
  safe and clearly unsafe SNP sets), and
* exploratory power curves in the examples.

Under the null hypothesis the victim's genotype at SNP ``l`` is
Bernoulli(p_l); under the alternative it is Bernoulli(phat_l).  Each
SNP's LR contribution is a two-point random variable with weights
``w1_l = log(phat_l/p_l)`` and ``w0_l = log((1-phat_l)/(1-p_l))``, so
the LR score's mean and variance under either hypothesis are sums of
per-SNP terms, and by the CLT the score is approximately normal.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np
from scipy import stats as scipy_stats

from ..errors import GenomicsError
from .lr_test import clip_frequencies, lr_weights


@dataclass(frozen=True)
class LrMoments:
    """Mean/variance of the LR score under both hypotheses."""

    null_mean: float
    null_var: float
    alt_mean: float
    alt_var: float


def lr_moments(
    case_frequencies: np.ndarray,
    reference_frequencies: np.ndarray,
    columns: Sequence[int] | None = None,
) -> LrMoments:
    """Exact first two moments of the LR score over a SNP subset."""
    phat = clip_frequencies(case_frequencies)
    p = clip_frequencies(reference_frequencies)
    w1, w0 = lr_weights(phat, p)
    if columns is not None:
        idx = list(columns)
        phat, p, w1, w0 = phat[idx], p[idx], w1[idx], w0[idx]
    spread = w1 - w0
    null_mean = float(np.sum(p * w1 + (1 - p) * w0))
    alt_mean = float(np.sum(phat * w1 + (1 - phat) * w0))
    null_var = float(np.sum(p * (1 - p) * spread**2))
    alt_var = float(np.sum(phat * (1 - phat) * spread**2))
    return LrMoments(
        null_mean=null_mean, null_var=null_var, alt_mean=alt_mean, alt_var=alt_var
    )


def analytical_power(
    case_frequencies: np.ndarray,
    reference_frequencies: np.ndarray,
    *,
    alpha: float,
    columns: Sequence[int] | None = None,
) -> float:
    """Normal-approximation detection power at false-positive rate alpha.

    Returns 0 for an empty or zero-variance subset: with no signal the
    detector cannot beat its false-positive budget.
    """
    if not 0 < alpha < 1:
        raise GenomicsError("alpha must be in (0, 1)")
    moments = lr_moments(case_frequencies, reference_frequencies, columns)
    if moments.null_var <= 0 or moments.alt_var <= 0:
        return 0.0
    threshold = moments.null_mean + scipy_stats.norm.ppf(1 - alpha) * np.sqrt(
        moments.null_var
    )
    z = (threshold - moments.alt_mean) / np.sqrt(moments.alt_var)
    return float(scipy_stats.norm.sf(z))


def select_safe_subset_analytical(
    case_frequencies: np.ndarray,
    reference_frequencies: np.ndarray,
    order: Sequence[int],
    *,
    alpha: float,
    beta: float,
) -> List[int]:
    """Greedy analytical analogue of the empirical safe-subset search.

    Used by the ablation benchmark; not part of the protocol proper.
    """
    selected: List[int] = []
    for column in order:
        candidate = selected + [column]
        if (
            analytical_power(
                case_frequencies,
                reference_frequencies,
                alpha=alpha,
                columns=candidate,
            )
            < beta
        ):
            selected.append(column)
    return selected


def power_curve(
    case_frequencies: np.ndarray,
    reference_frequencies: np.ndarray,
    order: Sequence[int],
    *,
    alpha: float,
) -> np.ndarray:
    """Power after each prefix of ``order`` (for plots and examples)."""
    powers = np.empty(len(order), dtype=np.float64)
    for i in range(len(order)):
        powers[i] = analytical_power(
            case_frequencies,
            reference_frequencies,
            alpha=alpha,
            columns=list(order[: i + 1]),
        )
    return powers
