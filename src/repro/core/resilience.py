"""Resilient OCALL exchange: timeout, retry, dedup, classified aborts.

The plain exchange in :mod:`repro.core.protocol` assumes perfect
delivery: a dropped frame raises straight out of the leader's phase
ECALL.  :class:`ResilientExchange` is a drop-in replacement for the
OCALL callable that tolerates the faults :mod:`repro.faults` injects
(and that a real deployment's network exhibits) without changing study
outcomes:

* **Timeout detection** — a member whose request, handling or reply did
  not complete observably is retried, with exponential backoff advanced
  on the *simulated* clock (:meth:`SimulatedNetwork.advance_clock`), so
  wall time stays unaffected and runs stay deterministic.
* **Idempotent re-sends** — a request frame is AEAD-protected *once* by
  the leader enclave; retries re-ship the identical bytes.  The member
  side filters its inbox by the expected frame hash (exactly what a
  transport integrity layer does) and hands each unique frame to its
  enclave exactly once, so per-channel sequence numbers never skip or
  repeat and the channel's replay protection is never tripped.  Member
  replies are likewise protected once, cached, and re-shipped on
  demand; the leader-side :class:`_ReplyRouter` deduplicates arrivals
  by frame hash.
* **Classified aborts** — a member that stays unreachable past the
  retry budget (or whose enclave crashed) raises
  :class:`~repro.errors.MemberUnresponsiveError` carrying a structured
  :class:`FailureReport`; the study never hangs and never silently
  continues without a member.

Corruption can only be repaired on the request leg: the leader opens
reply frames *inside* its phase ECALL where no retry is possible, so
the fault plan degrades reply-leg corruption to a drop (the integrity
check discarding the record) and the cached-reply re-send recovers it.

A leader-enclave crash is *not* handled here — it surfaces as
:class:`~repro.errors.EnclaveCrashedError` from the phase ECALL and is
the :class:`~repro.core.supervisor.ProtocolSupervisor`'s job.
"""

from __future__ import annotations

import hashlib
import threading
import time
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, Optional, Set, Tuple

from ..errors import (
    ChannelError,
    EnclaveCrashedError,
    MemberUnresponsiveError,
    NetworkError,
    ProtocolError,
    UnknownPeerError,
)
from ..net import Envelope
from ..obs.tracer import TRACER


def _frame_hash(body: bytes) -> bytes:
    return hashlib.sha256(body).digest()


@dataclass(frozen=True)
class FailureReport:
    """Structured account of why a member was declared unresponsive."""

    study_id: str
    member_id: str
    round_kind: str
    attempts: int
    cause: str
    simulated_time_s: float
    counters: Dict[str, int] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        return {
            "study_id": self.study_id,
            "member_id": self.member_id,
            "round_kind": self.round_kind,
            "attempts": self.attempts,
            "cause": self.cause,
            "simulated_time_s": self.simulated_time_s,
            "counters": dict(self.counters),
        }


class _ReplyRouter:
    """Routes the leader's inbox to per-member reply slots, with dedup.

    Worker threads of a parallel round all pump the shared leader inbox;
    one lock serialises the popping, and a per-member set of seen frame
    hashes rejects duplicated or late-released copies.  The sets are
    *generational*, not cumulative: a round boundary rotates the current
    generation into the previous one and starts fresh, so memory stays
    bounded by two rounds' traffic instead of growing for the whole
    study.  Two generations (not one) because a DELAYed duplicate is
    released while its successor round retries — it must still hit the
    dedup filter, and one-generation clearing would let it through.
    Frames older than that are rejected by tag/kind mismatch anyway.
    """

    def __init__(self, network, leader_id: str):
        self._network = network
        self._leader_id = leader_id
        self._lock = threading.Lock()
        self._seen: Dict[str, Set[bytes]] = defaultdict(set)
        self._seen_prev: Dict[str, Set[bytes]] = {}
        self._replies: Dict[str, bytes] = {}
        self._kind: Optional[str] = None
        self._expected: Set[str] = set()
        self.discarded = 0
        #: Peak number of tracked frame hashes (both generations) —
        #: evidence the dedup memory stays bounded across long studies.
        self.seen_high_water = 0

    def _track_high_water(self) -> None:
        # Caller holds self._lock.
        tracked = sum(len(s) for s in self._seen.values()) + sum(
            len(s) for s in self._seen_prev.values()
        )
        if tracked > self.seen_high_water:
            self.seen_high_water = tracked

    def begin_round(self, kind: str, expected: Set[str]) -> None:
        with self._lock:
            self._track_high_water()
            self._seen_prev = dict(self._seen)
            self._seen = defaultdict(set)
            self._kind = kind
            self._expected = set(expected)
            self._replies = {}

    def pump(self) -> None:
        """Drain whatever the leader inbox holds into reply slots."""
        with self._lock:
            while self._network.pending(self._leader_id):
                envelope = self._network.receive(self._leader_id)
                digest = _frame_hash(envelope.body)
                if digest in self._seen[envelope.sender] or digest in (
                    self._seen_prev.get(envelope.sender) or ()
                ):
                    self.discarded += 1
                    continue
                self._seen[envelope.sender].add(digest)
                self._track_high_water()
                if (
                    envelope.tag == self._kind
                    and envelope.sender in self._expected
                    and envelope.sender not in self._replies
                ):
                    self._replies[envelope.sender] = envelope.body
                else:
                    self.discarded += 1

    def has_reply(self, member_id: str) -> bool:
        with self._lock:
            return member_id in self._replies

    def replies(self) -> Dict[str, bytes]:
        with self._lock:
            return dict(self._replies)


class ResilientExchange:
    """OCALL exchange with bounded retry; see the module docstring.

    Callable with the ``(kind, frames) -> responses`` signature the
    leader enclave's phase ECALLs expect, for both execution modes.
    """

    def __init__(self, protocol):
        self._protocol = protocol
        self._federation = protocol.federation
        self._policy = self._federation.config.resilience
        self._router = _ReplyRouter(
            self._federation.network, self._federation.leader_id
        )
        self._stats_lock = threading.Lock()
        self._stats: Dict[str, int] = {
            "rounds": 0,
            "retries": 0,
            "junk_discarded": 0,
            "replies_reshipped": 0,
        }
        self._backoff_seconds = 0.0

    # -- stats ---------------------------------------------------------------

    def _bump(self, key: str, amount: int = 1) -> None:
        with self._stats_lock:
            self._stats[key] += amount

    def stats(self) -> Dict[str, float]:
        with self._stats_lock:
            stats: Dict[str, float] = dict(self._stats)
            stats["backoff_seconds"] = self._backoff_seconds
        stats["replies_deduped"] = self._router.discarded
        stats["dedup_seen_high_water"] = self._router.seen_high_water
        return stats

    # -- round driver --------------------------------------------------------

    def __call__(self, kind: str, frames: Dict[str, bytes]) -> Dict[str, bytes]:
        gate = self._protocol.round_gate
        if gate is not None:
            with gate(kind):
                return self._run_round(kind, frames)
        return self._run_round(kind, frames)

    def _run_round(self, kind: str, frames: Dict[str, bytes]) -> Dict[str, bytes]:
        federation = self._federation
        if federation.leader_id in frames:
            raise ProtocolError("leader cannot ocall itself")
        if not frames:
            return {}
        injector = federation.fault_injector
        if injector is not None:
            injector.begin_round(kind)
        self._bump("rounds")
        self._router.begin_round(kind, expected=set(frames))
        execution = federation.config.execution
        accounting = self._protocol._accounting
        member_times: Dict[str, float] = {}
        if execution.is_parallel and len(frames) > 1:
            with TRACER.span(
                "round", kind=kind, members=len(frames), concurrent=True,
                resilient=True,
            ):
                parent = TRACER.current_span_id() if TRACER.enabled else None

                def service(member_id: str, frame: bytes) -> float:
                    with TRACER.propagated(parent):
                        return self._service_member(
                            kind, member_id, frame, timer=time.thread_time
                        )

                executor = self._protocol._ensure_executor()
                wall_begin = time.perf_counter()
                futures = {
                    member_id: executor.submit(service, member_id, frame)
                    for member_id, frame in frames.items()
                }
                errors = []
                for member_id, future in futures.items():
                    try:
                        member_times[member_id] = future.result()
                    except Exception as exc:  # noqa: BLE001 - re-raised below
                        errors.append(exc)
                if errors:
                    raise errors[0]
                wall = time.perf_counter() - wall_begin
            accounting.record_round(
                member_times, kind=kind, wall_seconds=wall, concurrent=True
            )
        else:
            with TRACER.span(
                "round", kind=kind, members=len(frames), resilient=True
            ):
                for member_id, frame in frames.items():
                    member_times[member_id] = self._service_member(
                        kind, member_id, frame, timer=time.perf_counter
                    )
            accounting.record_round(member_times, kind=kind)
        arrived = self._router.replies()
        # Deterministic response order: request order, not arrival order.
        return {
            member_id: arrived[member_id]
            for member_id in frames
            if member_id in arrived
        }

    # -- per-member service state machine ------------------------------------

    def _service_member(
        self, kind: str, member_id: str, frame: bytes, *, timer
    ) -> float:
        """Drive one member through request → handle → reply, with retry.

        Returns the member's enclave compute seconds.  The state machine
        is monotonic — ``request_sent``, ``handled``, reply-arrival —
        and every transient :class:`NetworkError` rewinds only to the
        first incomplete stage, so completed work (in particular the
        single AEAD protect per frame) is never repeated.
        """
        federation = self._federation
        network = federation.network
        leader_id = federation.leader_id
        policy = self._policy
        expected = _frame_hash(frame)
        request_sent = False
        handled = False
        elapsed = 0.0
        reply: Optional[Envelope] = None
        attempts = 0
        while True:
            try:
                if not request_sent:
                    network.send(
                        Envelope(
                            sender=leader_id,
                            receiver=member_id,
                            tag=kind,
                            body=frame,
                        )
                    )
                    request_sent = True
                if not handled:
                    inbound = self._pump_member(member_id, expected)
                    begin = timer()
                    reply = federation.hosts[member_id].handle_envelope(inbound)
                    elapsed = timer() - begin
                    handled = True
                    if reply is not None:
                        network.send(reply)
                if reply is None:
                    return elapsed
                # Pump unconditionally: draining an already-routed
                # inbox is a no-op, and gating the pump on has_reply()
                # made this branch depend on whether a sibling worker
                # pumped first — a schedule-dependent path that
                # coverage-keyed replay (repro.fuzz) must not see.
                self._router.pump()
                if not self._router.has_reply(member_id):
                    raise NetworkError(
                        f"reply from {member_id!r} did not arrive"
                    )
                return elapsed
            except EnclaveCrashedError as exc:
                # The *member's* enclave died mid-handling (a leader
                # crash never surfaces here: leader ECALLs happen
                # outside the exchange).  Convert, so the supervisor
                # does not mistake it for a leader crash.
                raise MemberUnresponsiveError(
                    f"member {member_id!r} enclave crashed during {kind!r}",
                    report=self._failure_report(
                        member_id, kind, attempts, "enclave_crashed"
                    ),
                ) from exc
            except (UnknownPeerError, ChannelError):
                raise  # misconfiguration / protocol bugs are not transient
            except NetworkError as exc:
                attempts += 1
                self._bump("retries")
                if attempts >= policy.max_attempts:
                    raise MemberUnresponsiveError(
                        f"member {member_id!r} unresponsive after "
                        f"{attempts} attempts in round {kind!r}",
                        report=self._failure_report(
                            member_id, kind, attempts, str(exc)
                        ),
                    ) from exc
                self._backoff(member_id, kind, attempts)
                if not handled:
                    # The request may have been lost in flight; rewind
                    # to the send stage so the next attempt re-ships
                    # the identical frame bytes (the member-side hash
                    # filter makes a surviving earlier copy harmless).
                    request_sent = False
                if handled and reply is not None and not self._router.has_reply(
                    member_id
                ):
                    # The reply may have been lost; re-ship the cached
                    # frame bytes (protected once — dedup, not replay).
                    try:
                        network.send(
                            Envelope(
                                sender=member_id,
                                receiver=leader_id,
                                tag=kind,
                                body=reply.body,
                            )
                        )
                        self._bump("replies_reshipped")
                    except NetworkError:
                        pass  # still partitioned; next attempt retries

    def _pump_member(self, member_id: str, expected: bytes) -> Envelope:
        """Pop the member's inbox until the expected frame appears.

        Anything else — corrupted copies, late-released frames from
        earlier rounds, duplicates — fails the hash comparison and is
        discarded *before* it can reach the enclave and trip the
        channel's replay protection.  Raises :class:`NetworkError` when
        the inbox runs out without a match (request lost: retry).
        """
        network = self._federation.network
        while True:
            envelope = network.receive(member_id)
            if _frame_hash(envelope.body) == expected:
                return envelope
            self._bump("junk_discarded")
            if TRACER.enabled:
                TRACER.event(
                    "resilience.junk_discarded",
                    member=member_id,
                    tag=envelope.tag,
                )

    def _backoff(self, member_id: str, kind: str, attempt: int) -> None:
        """Exponential backoff on the simulated clock; release stragglers."""
        policy = self._policy
        delay = policy.backoff_base_s * policy.backoff_factor ** (attempt - 1)
        network = self._federation.network
        network.advance_clock(delay)
        with self._stats_lock:
            self._backoff_seconds += delay
        injector = self._federation.fault_injector
        released = 0
        if injector is not None:
            # Waiting out the timeout is when delayed frames finally
            # land; release everything in flight around this member.
            released = injector.release_delayed(member_id)
        if TRACER.enabled:
            TRACER.event(
                "resilience.retry",
                member=member_id,
                kind=kind,
                attempt=attempt,
                backoff_s=delay,
                released_delayed=released,
            )

    def _failure_report(
        self, member_id: str, kind: str, attempts: int, cause: str
    ) -> FailureReport:
        federation = self._federation
        counters = dict(self.stats())
        injector = federation.fault_injector
        if injector is not None:
            counters.update(
                {f"fault_{k}": v for k, v in injector.counters().items()}
            )
        return FailureReport(
            study_id=federation.config.study_id,
            member_id=member_id,
            round_kind=kind,
            attempts=attempts,
            cause=cause,
            simulated_time_s=federation.network.simulated_time,
            counters=counters,
        )
