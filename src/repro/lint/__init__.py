"""Domain-aware static analysis for the GenDPR reproduction.

The chaos and equivalence suites *test* the repo's trust invariants;
this package *proves the easy half statically*, on every commit:

* **R1 enclave-purity** — attested enclave code may not reach ambient
  nondeterminism or I/O (clocks, ``random``, ``os.urandom``, files,
  sockets, stdout); randomness must come from :mod:`repro.crypto.rng`.
* **R2 determinism** — protocol/statistics code may not let set
  iteration order, ``id()`` or the wall clock into decisions, which
  would break the bit-identical sequential/parallel and
  fault-free/faulted guarantees.
* **R3 crypto-misuse** — digests/MACs/measurements compare via
  ``hmac.compare_digest``; no literal keys/nonces; no digest
  truncation.
* **R4 lock-discipline** — the ``with``-nesting acquisition graph over
  the network/resilience layers must stay acyclic (deadlock freedom of
  the ThreadPoolExecutor fan-out); :mod:`repro.lint.runtime` extends
  the check to dynamically observed orders.
* **R5 error-taxonomy** — every ``raise`` in protocol/net/TEE code is
  a :mod:`repro.errors` subclass, keeping supervisor failure
  classification total.

Entry points: ``repro lint [paths]`` (human/JSON reports, baseline,
``lint.toml`` scope map) and the :func:`run_lint` library API.
"""

from .baseline import Baseline
from .config import (
    DEFAULT_SCOPES,
    LintConfig,
    ScopeMap,
    find_config,
    load_config,
)
from .engine import LintResult, run_lint
from .findings import Finding, Severity
from .reporting import human_report, json_report
from .rules import REGISTRY, ModuleInfo, Rule, register, rule_catalog
from .runtime import OrderedLockFactory, combined_cycles

__all__ = [
    "Baseline",
    "DEFAULT_SCOPES",
    "Finding",
    "LintConfig",
    "LintResult",
    "ModuleInfo",
    "OrderedLockFactory",
    "REGISTRY",
    "Rule",
    "ScopeMap",
    "Severity",
    "combined_cycles",
    "find_config",
    "human_report",
    "json_report",
    "load_config",
    "register",
    "rule_catalog",
    "run_lint",
]
