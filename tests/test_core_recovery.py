"""Leader crash recovery from sealed checkpoints."""

from __future__ import annotations

import pytest

from repro import partition_cohort
from repro.core.enclave_logic import GenDPREnclave
from repro.core.federation import build_federation
from repro.core.protocol import GenDPRProtocol
from repro.crypto.rng import DeterministicRng
from repro.errors import ProtocolError, SealingError
from repro.tee.channel import establish_channel
from repro.tee.sealing import SealedBlob


@pytest.fixture()
def federation(small_cohort, study_config):
    return build_federation(
        study_config, partition_cohort(small_cohort, 3), small_cohort
    )


def _run_through_maf(federation):
    """Drive the protocol through summaries + MAF, return the protocol."""
    protocol = GenDPRProtocol(federation)
    leader_host = federation.leader_host
    leader_host.enclave.ecall(
        "lead_collect_summaries",
        leader_host.store,
        leader_host.reference_store,
        protocol._ocall_exchange,
    )
    l_prime = leader_host.enclave.ecall("lead_run_maf")
    return protocol, l_prime


def _replace_leader(federation):
    """Simulate a leader machine restart: fresh enclave, re-attested
    channels, sealed datasets re-verified on its own premises."""
    leader_id = federation.leader_id
    old = federation.enclaves[leader_id]
    rng = DeterministicRng("recovery")
    replacement = GenDPREnclave(
        platform_key=federation.platforms[leader_id].root_key,
        enclave_id=leader_id,
        data_auth_key=old._data_signer._key,
        rng=rng.fork("enclave"),
    )
    verifier = federation.attestation.verifier()
    for member_id in federation.member_ids:
        if member_id == leader_id:
            continue
        leader_end, member_end, _ = establish_channel(
            replacement,
            federation.platforms[leader_id],
            federation.enclaves[member_id],
            federation.platforms[member_id],
            verifier,
            rng=rng.fork(f"chan/{member_id}"),
        )
        replacement.install_channel(leader_end)
        federation.enclaves[member_id].install_channel(member_end)
    return replacement


class TestCheckpointRestore:
    def test_recovered_leader_completes_study_identically(
        self, small_cohort, study_config
    ):
        # Reference: an uninterrupted run.
        reference = GenDPRProtocol(
            build_federation(
                study_config, partition_cohort(small_cohort, 3), small_cohort
            )
        ).run()

        # Interrupted run: checkpoint after MAF, crash, recover, resume.
        federation = build_federation(
            study_config, partition_cohort(small_cohort, 3), small_cohort
        )
        protocol, l_prime = _run_through_maf(federation)
        leader_host = federation.leader_host
        blob = leader_host.enclave.ecall("checkpoint_state")

        federation.enclaves[federation.leader_id].crash()
        replacement = _replace_leader(federation)
        replacement.ecall("restore_state", blob)
        # The leader's sealed stores live on its own host and remain
        # readable: sealing keys are platform+measurement bound, and the
        # replacement runs the same trusted code on the same platform.
        store = leader_host.store
        ref_store = leader_host.reference_store

        l_double_prime = replacement.ecall(
            "lead_run_ld", store, ref_store, protocol._ocall_exchange
        )
        replacement.ecall(
            "lead_broadcast_retained", "double_prime", protocol._ocall_exchange
        )
        l_safe = replacement.ecall(
            "lead_run_lr", store, ref_store, protocol._ocall_exchange
        )

        assert l_prime == reference.l_prime
        assert l_double_prime == reference.l_double_prime
        assert l_safe == reference.l_safe

    def test_checkpoint_requires_leader(self, federation):
        member_id = next(
            m for m in federation.member_ids if m != federation.leader_id
        )
        with pytest.raises(ProtocolError):
            federation.enclaves[member_id].ecall("checkpoint_state")

    def test_tampered_checkpoint_rejected(self, federation):
        protocol, _ = _run_through_maf(federation)
        blob = federation.leader_host.enclave.ecall("checkpoint_state")
        raw = bytearray(blob.data)
        raw[30] ^= 0xFF
        with pytest.raises(SealingError):
            federation.leader_host.enclave.ecall(
                "restore_state", SealedBlob(bytes(raw), blob.label)
            )

    def test_foreign_platform_cannot_restore(self, federation, small_cohort):
        protocol, _ = _run_through_maf(federation)
        blob = federation.leader_host.enclave.ecall("checkpoint_state")
        foreign = GenDPREnclave(
            platform_key=bytes(32),
            enclave_id=federation.leader_id,
            data_auth_key=bytes(32),
        )
        with pytest.raises(SealingError):
            foreign.ecall("restore_state", blob)

    def test_checkpoint_roundtrip_preserves_state(self, federation):
        protocol, l_prime = _run_through_maf(federation)
        leader = federation.enclaves[federation.leader_id]
        blob = leader.ecall("checkpoint_state")
        fresh = GenDPREnclave(
            platform_key=federation.platforms[federation.leader_id].root_key,
            enclave_id=federation.leader_id,
            data_auth_key=leader._data_signer._key,
        )
        fresh.ecall("restore_state", blob)
        assert fresh._retained["prime"] == l_prime
        assert fresh._member_sizes == leader._member_sizes
        assert fresh._combo_sizes == leader._combo_sizes
