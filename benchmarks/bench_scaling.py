"""Scaling — running time vs cohort size (paper Section 7.2's claim).

"We claim that GenDPR is scalable since doubling the number of genomes
considered at first (7,430) or considering 10 times more SNPs in a
study have not rendered GenDPR unusable."

This bench sweeps the genome count at a fixed panel and reports total
running time; the expected shape is (sub-)linear growth — the phase
work is dominated by count/moment/matrix operations linear in
genomes × retained SNPs.
"""

from __future__ import annotations

from repro.bench import paper_cohort, paper_config, render_table
from repro.core.protocol import run_study

SNPS = 2_000
#: Paper-scale genome counts to sweep (scaled by REPRO_BENCH_SCALE).
GENOME_SWEEP = (3_715, 7_430, 14_860, 29_720)


def test_scaling_in_genomes(benchmark, save_result):
    def run_all():
        rows = []
        for genomes in GENOME_SWEEP:
            cohort, _ = paper_cohort(genomes, SNPS)
            result = run_study(
                cohort,
                paper_config(SNPS, study_id=f"scale-{genomes}"),
                3,
            )
            rows.append(
                (
                    cohort.case.num_individuals,
                    result.retained_after_ld,
                    result.timings.total_seconds * 1000.0,
                )
            )
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    table = render_table(
        ["Case genomes", "LD retained", "Total (ms)"],
        [[f"{g:,}", ld, f"{ms:,.1f}"] for g, ld, ms in rows],
    )
    save_result(
        "scaling_genomes",
        f"Scaling: running time vs cohort size ({SNPS:,} SNPs, 3 GDOs).\n"
        + table,
    )
    # Shape: 8x more genomes must not cost more than ~20x the time
    # (the paper observes near-proportional growth).
    smallest, largest = rows[0][2], rows[-1][2]
    assert largest < 20 * max(smallest, 1.0)
