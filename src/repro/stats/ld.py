"""Linkage disequilibrium from pooled correlation moments (Phase 2).

The paper computes the r-squared correlation between a SNP pair from the
five sums each member outsources — mu_l, mu_r, mu_lr, mu_l2, mu_r2 —
plus the pooled population size N_T.  These are ordinary second-moment
sums, so the leader can add members' contributions and the reference
set's and obtain exactly the statistics of the pooled population,
without ever pooling genotypes.  That is the crux of GenDPR's Phase 2
correction over the naive scheme.

Significance: under independence, ``N_T * r^2`` is asymptotically
chi-squared with 1 dof; a p-value *below* the LD cut-off marks the pair
as dependent.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable

from ..errors import GenomicsError


@dataclass(frozen=True)
class PairMoments:
    """The correlation sums exchanged for one SNP pair.

    All fields are plain sums over one population's individuals, so
    moments from disjoint populations combine by field-wise addition.
    """

    mu_l: int
    mu_r: int
    mu_lr: int
    mu_l2: int
    mu_r2: int
    count: int

    def validate(self) -> "PairMoments":
        """Check internal consistency; call on untrusted inputs.

        Validation is explicit rather than automatic because the LD walk
        constructs millions of (trusted, already-valid) instances via
        :meth:`__add__`; only moments parsed from peer messages need the
        check.
        """
        if self.count < 0:
            raise GenomicsError("population count must be non-negative")
        for name in ("mu_l", "mu_r", "mu_lr", "mu_l2", "mu_r2"):
            value = getattr(self, name)
            if value < 0 or value > self.count:
                raise GenomicsError(
                    f"{name}={value} impossible for {self.count} binary genotypes"
                )
        return self

    def __add__(self, other: "PairMoments") -> "PairMoments":
        return PairMoments(
            mu_l=self.mu_l + other.mu_l,
            mu_r=self.mu_r + other.mu_r,
            mu_lr=self.mu_lr + other.mu_lr,
            mu_l2=self.mu_l2 + other.mu_l2,
            mu_r2=self.mu_r2 + other.mu_r2,
            count=self.count + other.count,
        )

    @classmethod
    def zero(cls) -> "PairMoments":
        return cls(0, 0, 0, 0, 0, 0)

    @classmethod
    def sum(cls, parts: Iterable["PairMoments"]) -> "PairMoments":
        total = cls.zero()
        for part in parts:
            total = total + part
        return total


def r_squared(moments: PairMoments) -> float:
    """Pearson r^2 of a SNP pair from pooled moments.

    A pair involving a constant SNP (zero variance) has r^2 = 0: a fixed
    column carries no linkage information.
    """
    n = moments.count
    if n < 2:
        return 0.0
    covariance = n * moments.mu_lr - moments.mu_l * moments.mu_r
    var_left = n * moments.mu_l2 - moments.mu_l**2
    var_right = n * moments.mu_r2 - moments.mu_r**2
    if var_left <= 0 or var_right <= 0:
        return 0.0
    value = (covariance * covariance) / (var_left * var_right)
    # Guard against floating drift just above 1 for perfectly linked pairs.
    return min(1.0, float(value))


def chi2_sf_1df(statistic: float) -> float:
    """Upper tail of the 1-dof chi-squared distribution.

    Closed form ``erfc(sqrt(x/2))`` — identical to scipy's value (the
    tests check agreement) but ~100x faster for the scalar calls the LD
    walk makes per pair.
    """
    if statistic <= 0:
        return 1.0
    return math.erfc(math.sqrt(statistic / 2.0))


def ld_pvalue(moments: PairMoments) -> float:
    """p-value of the r^2 statistic (``N_T * r^2`` vs chi-squared, 1 dof)."""
    n = moments.count
    if n < 2:
        return 1.0
    return chi2_sf_1df(n * r_squared(moments))


def is_dependent(moments: PairMoments, ld_cutoff: float) -> bool:
    """Phase 2 decision: dependent iff the p-value falls below the cut-off."""
    if not 0.0 < ld_cutoff < 1.0:
        raise GenomicsError("ld_cutoff must be in (0, 1)")
    return ld_pvalue(moments) < ld_cutoff


def r_squared_direct(column_left, column_right) -> float:
    """r^2 straight from two genotype columns (test oracle).

    Used by tests to cross-check the moment-based computation against a
    direct correlation, and by the naive baseline which has the columns
    locally.
    """
    import numpy as np

    left = np.asarray(column_left, dtype=np.float64)
    right = np.asarray(column_right, dtype=np.float64)
    if left.shape != right.shape:
        raise GenomicsError("columns differ in length")
    if left.size < 2 or left.std() == 0 or right.std() == 0:
        return 0.0
    correlation = np.corrcoef(left, right)[0, 1]
    if math.isnan(correlation):
        return 0.0
    return min(1.0, float(correlation**2))
