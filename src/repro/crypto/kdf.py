"""Key derivation: HKDF (RFC 5869) over SHA-256.

Used to derive independent channel, sealing and MAC keys from a single
Diffie-Hellman shared secret or enclave root key, with domain-separating
``info`` labels so no two subsystems ever share key material.
"""

from __future__ import annotations

import hashlib
import hmac

_HASH_LEN = hashlib.sha256().digest_size


def hkdf_extract(salt: bytes, input_key_material: bytes) -> bytes:
    """HKDF-Extract: concentrate entropy into a pseudorandom key."""
    if not salt:
        salt = bytes(_HASH_LEN)
    return hmac.new(salt, input_key_material, hashlib.sha256).digest()


def hkdf_expand(pseudo_random_key: bytes, info: bytes, length: int) -> bytes:
    """HKDF-Expand: stretch a PRK into ``length`` output bytes."""
    if length <= 0:
        raise ValueError("length must be positive")
    if length > 255 * _HASH_LEN:
        raise ValueError("requested HKDF output is too long")
    blocks = []
    previous = b""
    counter = 1
    while sum(len(b) for b in blocks) < length:
        previous = hmac.new(
            pseudo_random_key, previous + info + bytes([counter]), hashlib.sha256
        ).digest()
        blocks.append(previous)
        counter += 1
    return b"".join(blocks)[:length]


def hkdf(
    input_key_material: bytes,
    *,
    salt: bytes = b"",
    info: bytes = b"",
    length: int = 32,
) -> bytes:
    """One-shot HKDF-Extract-then-Expand."""
    return hkdf_expand(hkdf_extract(salt, input_key_material), info, length)


def derive_subkey(root_key: bytes, label: str, length: int = 32) -> bytes:
    """Derive a purpose-bound subkey from ``root_key``.

    ``label`` must uniquely name the purpose (e.g. ``"sealing"``,
    ``"channel/gdo-3"``); distinct labels give computationally
    independent keys.
    """
    return hkdf(root_key, info=b"repro.gendpr/" + label.encode("utf-8"), length=length)
