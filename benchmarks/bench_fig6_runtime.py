"""Figures 6a/6b — running time comparison at 10,000 SNPs.

Same deployments as Figure 5 but with a 10x larger SNP panel; the paper
observes roughly proportional growth (LD/LR work scales with the number
of retained SNPs) while GenDPR remains usable and benefits from work
distribution as GDOs are added.
"""

from __future__ import annotations

import pytest

from repro.bench import (
    PAPER_CASE_FULL,
    PAPER_CASE_HALF,
    PAPER_GDO_COUNTS,
    bench_scale,
    centralized_row,
    gendpr_row,
    paper_cohort,
    render_runtime_figure,
)

SNPS = 10_000


@pytest.mark.parametrize(
    "figure,case_size",
    [("fig6a", PAPER_CASE_HALF), ("fig6b", PAPER_CASE_FULL)],
)
def test_fig6_running_time(benchmark, save_result, figure, case_size):
    cohort, _ = paper_cohort(case_size, SNPS)

    def run_all():
        rows = [centralized_row(cohort, SNPS, 3)]
        rows += [gendpr_row(cohort, SNPS, g) for g in PAPER_GDO_COUNTS]
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    caption = (
        f"Figure {figure[-2:]}: {cohort.case.num_individuals:,} genomes / "
        f"{SNPS:,} SNPs (scale={bench_scale()})"
    )
    save_result(figure, render_runtime_figure(rows, caption))
    benchmark.extra_info["rows"] = rows
