"""R4 fixture — every thread takes locks in one global order."""

import threading


class Worker:
    def __init__(self):
        self._alpha_lock = threading.Lock()
        self._beta_lock = threading.Lock()

    def forward(self):
        with self._alpha_lock:
            with self._beta_lock:  # alpha -> beta
                return 1

    def also_forward(self):
        with self._alpha_lock:
            with self._beta_lock:  # same order: no cycle
                return 2

    def independent(self):
        with self._beta_lock:  # no nesting: no edge
            return 3
