"""Miniature enclave where every flow is sanctioned or audited."""


class Store:
    def load(self, idx):
        return [idx]


class Channel:
    def protect(self, data):
        return b"ciphertext"


class MiniEnclave:
    def __init__(self):
        self.store = Store()
        self.channel = Channel()

    def export_column(self, idx):
        col = self.store.load(idx)
        print(len(col))  # fine: len() is a clean call
        return self.channel.protect(col)  # fine: sanctioned sink

    def release_stats(self):
        return 1.0

    def ecall(self, name, *args):
        return getattr(self, name)(*args)
