"""R1 fixture — enclave-scope module full of ambient-I/O violations."""

import os
import random  # R1: banned module import
import socket  # R1: banned module import
import time


def leaky_phase(data):
    stamp = time.time()  # R1: wall clock
    print("phase done", stamp)  # R1: stdout
    noise = random.random()  # R1: global RNG call
    seed = os.urandom(8)  # R1: OS entropy
    with open("/tmp/out.bin", "wb") as handle:  # R1: ambient file I/O
        handle.write(seed)
    return data, noise, socket.gethostname()  # R1: socket call
