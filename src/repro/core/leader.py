"""Random leader election.

GenDPR "proceeds with a randomly elected leader GDO" chosen among the
registered enclaves (Section 5.2).  The election here is a deterministic
function of the study seed and the sorted member list, so

* every member computes the same leader independently (no extra round),
* re-running a study configuration reproduces the same election, and
* different seeds exercise different leaders, which the tests use to
  show the outcome is leader-independent.
"""

from __future__ import annotations

from typing import Sequence

from ..crypto.rng import DeterministicRng
from ..errors import ProtocolError
from ..obs.tracer import TRACER


def elect_leader(member_ids: Sequence[str], seed: int, study_id: str) -> str:
    """Pick the leader GDO for one study.

    The draw is keyed by the study identifier as well as the seed so two
    concurrent studies in one federation generally elect different
    leaders, spreading coordination load.
    """
    members = sorted(set(member_ids))
    if not members:
        raise ProtocolError("cannot elect a leader from an empty federation")
    if len(members) != len(member_ids):
        raise ProtocolError("member ids must be unique")
    with TRACER.span(
        "leader_election", study_id=study_id, seed=seed, members=len(members)
    ) as span:
        rng = DeterministicRng(f"leader-election/{study_id}/{seed}")
        leader = rng.choice(members)
        span.annotate(leader=leader)
    return leader
