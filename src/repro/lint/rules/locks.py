"""R4 — lock discipline.

The parallel execution engine (PR 2) fans OCALLs out over a
``ThreadPoolExecutor`` while the simulated network and the resilient
exchange guard shared state with per-inbox and per-component locks.
Deadlock freedom there is an ordering argument: as long as every thread
acquires locks in one global partial order, no cycle of waiters can
form.  This rule extracts the static acquisition-order graph from
``with <lock>`` nestings across the scoped modules and reports:

* a cycle in the acquisition-order graph (potential deadlock), and
* re-acquisition of the same named non-reentrant lock inside itself.

Lock names are canonicalised as ``Class.attr`` (``self._stats_lock``
inside ``SimulatedNetwork`` → ``SimulatedNetwork._stats_lock``); keyed
collections collapse to one node (``SimulatedNetwork._inbox_locks[]``).
The debug runtime in :mod:`repro.lint.runtime` records the *dynamic*
acquisition order during tests and cross-checks it against this graph,
covering orderings that only arise through call chains.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..astutil import identifier_parts, iter_function_defs, terminal_identifier
from ..findings import Finding
from . import ModuleInfo, Rule, register


def is_lockish(node: ast.AST) -> bool:
    """Does this expression name a lock (identifier contains "lock")?"""
    identifier = terminal_identifier(node)
    if identifier is None:
        return False
    parts = identifier_parts(identifier)
    return bool(parts & {"lock", "locks"})


def canonical_lock_name(
    node: ast.AST, class_name: Optional[str], module: str
) -> str:
    """Stable cross-module node name for a lock expression."""
    if isinstance(node, ast.Subscript):
        return canonical_lock_name(node.value, class_name, module) + "[]"
    if isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name):
        if node.value.id == "self" and class_name:
            return f"{class_name}.{node.attr}"
        return f"{node.value.id}.{node.attr}"
    if isinstance(node, ast.Name):
        owner = class_name or module.rsplit(".", 1)[-1]
        return f"{owner}:{node.id}"
    identifier = terminal_identifier(node)
    return f"{class_name or module}:{identifier or '<lock>'}"


@dataclass(frozen=True)
class LockEdge:
    """``outer`` was held while ``inner`` was acquired."""

    outer: str
    inner: str
    module: str
    path: str
    line: int
    column: int
    line_content: str


def extract_lock_edges(
    module: ModuleInfo,
) -> "Tuple[List[LockEdge], Set[str]]":
    """Static acquisition-order edges plus every lock node seen."""
    edges: List[LockEdge] = []
    nodes: Set[str] = set()

    def walk(
        body: Iterable[ast.AST], held: Tuple[str, ...], cls: Optional[str]
    ) -> None:
        for statement in body:
            if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue  # visited separately with a fresh held-stack
            if isinstance(statement, (ast.With, ast.AsyncWith)):
                acquired: List[str] = []
                for item in statement.items:
                    expr = item.context_expr
                    target = expr
                    # ``with lock_factory.lock(name)``-style acquisition:
                    # look through a call to its receiver.
                    if isinstance(expr, ast.Call):
                        target = expr.func
                    if not is_lockish(target):
                        continue
                    name = canonical_lock_name(target, cls, module.module)
                    nodes.add(name)
                    for outer in held + tuple(acquired):
                        edges.append(
                            LockEdge(
                                outer=outer,
                                inner=name,
                                module=module.module,
                                path=module.display_path,
                                line=expr.lineno,
                                column=expr.col_offset + 1,
                                line_content=module.line_content(expr.lineno),
                            )
                        )
                    acquired.append(name)
                walk(statement.body, held + tuple(acquired), cls)
                continue
            for child_body in _child_bodies(statement):
                walk(child_body, held, cls)

    for function, cls in iter_function_defs(module.tree):
        walk(getattr(function, "body", []), (), cls)
    return edges, nodes


def _child_bodies(node: ast.AST) -> "List[List[ast.AST]]":
    bodies = []
    for attr in ("body", "orelse", "finalbody"):
        value = getattr(node, attr, None)
        if isinstance(value, list):
            bodies.append(value)
    for handler in getattr(node, "handlers", []) or []:
        bodies.append(handler.body)
    return bodies


def find_cycles(edges: Iterable[Tuple[str, str]]) -> "List[List[str]]":
    """Elementary cycles in the acquisition graph (DFS, deduplicated)."""
    graph: Dict[str, Set[str]] = {}
    for outer, inner in edges:
        graph.setdefault(outer, set()).add(inner)
        graph.setdefault(inner, set())
    cycles: List[List[str]] = []
    seen_signatures: Set[Tuple[str, ...]] = set()

    def dfs(node: str, path: List[str], on_path: Set[str]) -> None:
        for successor in sorted(graph.get(node, ())):
            if successor in on_path:
                start = path.index(successor)
                cycle = path[start:] + [successor]
                signature = tuple(sorted(set(cycle)))
                if signature not in seen_signatures:
                    seen_signatures.add(signature)
                    cycles.append(cycle)
                continue
            dfs(successor, path + [successor], on_path | {successor})

    for start in sorted(graph):
        dfs(start, [start], {start})
    return cycles


@register
class LockDisciplineRule(Rule):
    rule_id = "R4"
    name = "lock-discipline"
    rationale = (
        "the ThreadPoolExecutor fan-out stays deadlock-free only while "
        "every thread acquires locks in one global order"
    )
    default_scopes = ("net", "resilience", "serve")

    def __init__(self, options: "dict[str, object]"):
        super().__init__(options)
        self._edges: List[LockEdge] = []

    def check(self, module: ModuleInfo) -> Iterable[Finding]:
        edges, _ = extract_lock_edges(module)
        findings: List[Finding] = []
        for edge in edges:
            # Same-name nesting of a scalar lock is an immediate
            # self-deadlock for threading.Lock; keyed collections ([])
            # may hold distinct instances, so only warn via the graph.
            if edge.outer == edge.inner and not edge.inner.endswith("[]"):
                findings.append(
                    Finding(
                        rule=self.rule_id,
                        severity=self.severity,
                        path=edge.path,
                        module=edge.module,
                        line=edge.line,
                        column=edge.column,
                        message=(
                            f"nested acquisition of non-reentrant lock "
                            f"{edge.inner!r} deadlocks immediately"
                        ),
                        line_content=edge.line_content,
                    )
                )
            else:
                self._edges.append(edge)
        return findings

    def finalize(self) -> Iterable[Finding]:
        cycles = find_cycles((e.outer, e.inner) for e in self._edges)
        findings = []
        for cycle in cycles:
            # Attribute the cycle to the edge closing it.
            closing = next(
                (
                    e
                    for e in self._edges
                    if e.outer == cycle[-2] and e.inner == cycle[-1]
                ),
                self._edges[0] if self._edges else None,
            )
            if closing is None:
                continue
            findings.append(
                Finding(
                    rule=self.rule_id,
                    severity=self.severity,
                    path=closing.path,
                    module=closing.module,
                    line=closing.line,
                    column=closing.column,
                    message=(
                        "lock acquisition-order cycle: "
                        + " -> ".join(cycle)
                        + "; impose one global acquisition order"
                    ),
                    line_content=closing.line_content,
                )
            )
        return findings
