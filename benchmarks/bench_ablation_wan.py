"""Ablation — wide-area network sensitivity.

The paper evaluates computation on one host; a real federation spans
continents.  GenDPR trades bulk genome transfer for *rounds* of small
messages, so its WAN cost is latency-bound while the centralized
baseline's is bandwidth-bound.  This ablation replays both systems'
actual traffic through the simulated network's latency/bandwidth model
and reports the transfer-time component each deployment would add on a
research WAN (10 ms one-way latency, 100 MB/s).
"""

from __future__ import annotations

from repro.bench import (
    PAPER_CASE_FULL,
    centralized_row,
    gendpr_row,
    paper_cohort,
    render_table,
)
from repro.bench.workloads import PAPER_THRESHOLDS
from repro.config import NetworkProfile, StudyConfig
from repro.core.baseline import run_centralized_study
from repro.core.protocol import run_study
from repro.net import SimulatedNetwork

SNPS = 2_500
LATENCY_S = 0.010
BANDWIDTH = 100e6


def _config(study_id: str) -> StudyConfig:
    return StudyConfig(
        snp_count=SNPS, thresholds=PAPER_THRESHOLDS, study_id=study_id
    )


def test_ablation_wan_transfer_time(benchmark, save_result):
    cohort, _ = paper_cohort(PAPER_CASE_FULL, SNPS)
    profile = NetworkProfile(latency_s=LATENCY_S, bandwidth_bytes_per_s=BANDWIDTH)

    def run_all():
        rows = []
        for gdos in (3, 7):
            network = SimulatedNetwork(profile)
            result = run_study(
                cohort, _config(f"wan-gendpr-{gdos}"), gdos, network=network
            )
            rows.append(
                (
                    f"GenDPR, {gdos} GDOs",
                    result.network_messages,
                    result.network_bytes,
                    network.simulated_time,
                )
            )
        network = SimulatedNetwork(profile)
        result = run_centralized_study(
            cohort, _config("wan-central"), 3, network=network
        )
        rows.append(
            (
                "Centralized, 3 GDOs",
                result.network_messages,
                result.network_bytes,
                network.simulated_time,
            )
        )
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    table = render_table(
        ["Deployment", "Messages", "Bytes", "WAN transfer (s)"],
        [
            [name, f"{messages:,}", f"{size:,}", f"{seconds:.2f}"]
            for name, messages, size, seconds in rows
        ],
    )
    save_result(
        "ablation_wan",
        "Ablation: simulated WAN transfer time "
        f"(latency {LATENCY_S * 1000:.0f} ms, {BANDWIDTH / 1e6:.0f} MB/s).\n"
        + table
        + "\nGenDPR's WAN cost is message-round-bound; the centralized "
        "baseline's is genome-volume-bound.",
    )
    # Every deployment accumulated simulated transfer time.
    assert all(seconds > 0 for _, _, _, seconds in rows)
