"""Span exporters: JSONL, Chrome ``trace_event`` JSON, console tree.

* **JSONL** — one span per line, loss-free: ``read_jsonl`` inverts
  ``write_jsonl`` exactly (the round-trip test relies on it).  This is
  what ``repro run --trace out.jsonl`` writes.
* **Chrome trace** — the ``trace_event`` format consumed by
  ``about://tracing`` / Perfetto, for visual inspection of a run.
* **Console tree** — an indented duration tree for terminals, used by
  ``repro report``.
"""

from __future__ import annotations

import io
import json
from collections import defaultdict
from typing import Dict, IO, Iterable, List, Optional, Sequence, Union

from ..errors import ObservabilityError
from .span import Span

PathOrFile = Union[str, "io.TextIOBase", IO[str]]


def span_to_dict(span: Span) -> Dict[str, object]:
    """Flatten one span into JSON-safe primitives."""
    return {
        "name": span.name,
        "span_id": span.span_id,
        "parent_id": span.parent_id,
        "start_ns": span.start_ns,
        "duration_ns": span.duration_ns,
        "attributes": dict(span.attributes),
    }


def span_from_dict(payload: Dict[str, object]) -> Span:
    """Rebuild a span from :func:`span_to_dict` output."""
    try:
        return Span(
            name=str(payload["name"]),
            span_id=int(payload["span_id"]),  # type: ignore[arg-type]
            parent_id=(
                None
                if payload.get("parent_id") is None
                else int(payload["parent_id"])  # type: ignore[arg-type]
            ),
            start_ns=int(payload["start_ns"]),  # type: ignore[arg-type]
            duration_ns=int(payload["duration_ns"]),  # type: ignore[arg-type]
            attributes=dict(payload.get("attributes") or {}),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ObservabilityError(f"malformed span record: {exc}") from exc


def _open_for(target: PathOrFile, mode: str):
    if isinstance(target, str):
        return open(target, mode, encoding="utf-8"), True
    return target, False


def write_jsonl(spans: Iterable[Span], target: PathOrFile) -> int:
    """Write spans as JSON Lines; returns the number written."""
    handle, owned = _open_for(target, "w")
    count = 0
    try:
        for span in spans:
            handle.write(json.dumps(span_to_dict(span), sort_keys=True))
            handle.write("\n")
            count += 1
    finally:
        if owned:
            handle.close()
    return count


def read_jsonl(source: PathOrFile) -> List[Span]:
    """Parse a JSONL trace back into spans (inverse of :func:`write_jsonl`)."""
    handle, owned = _open_for(source, "r")
    try:
        spans = []
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ObservabilityError(
                    f"trace line {line_number} is not valid JSON: {exc}"
                ) from exc
            spans.append(span_from_dict(payload))
        return spans
    finally:
        if owned:
            handle.close()


def to_chrome_trace(spans: Iterable[Span]) -> Dict[str, object]:
    """Spans as a Chrome ``trace_event`` document (``about://tracing``).

    Durations use complete ("X") events; point events use instant ("i")
    events.  Timestamps are microseconds, as the format requires.
    """
    events: List[Dict[str, object]] = []
    for span in spans:
        event: Dict[str, object] = {
            "name": span.name,
            "ts": span.start_ns / 1000.0,
            "pid": 1,
            "tid": 1,
            "args": dict(span.attributes),
        }
        if span.is_event:
            event["ph"] = "i"
            event["s"] = "t"
        else:
            event["ph"] = "X"
            event["dur"] = span.duration_ns / 1000.0
        events.append(event)
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(spans: Iterable[Span], target: PathOrFile) -> None:
    """Write :func:`to_chrome_trace` output as JSON."""
    handle, owned = _open_for(target, "w")
    try:
        json.dump(to_chrome_trace(spans), handle, indent=2)
        handle.write("\n")
    finally:
        if owned:
            handle.close()


def _format_attributes(span: Span, limit: int = 4) -> str:
    parts = []
    for key, value in list(span.attributes.items())[:limit]:
        text = f"{value:.4g}" if isinstance(value, float) else str(value)
        if len(text) > 32:
            text = text[:29] + "..."
        parts.append(f"{key}={text}")
    if len(span.attributes) > limit:
        parts.append("...")
    return " ".join(parts)


def render_span_tree(
    spans: Sequence[Span],
    *,
    max_events: Optional[int] = 3,
) -> str:
    """Indented console tree: name, duration, attributes.

    Args:
        max_events: per parent, show at most this many point events
            (followed by an elision count) — per-message events would
            otherwise drown the tree.  ``None`` shows everything.
    """
    by_id = {span.span_id: span for span in spans}
    children: Dict[Optional[int], List[Span]] = defaultdict(list)
    for span in spans:
        parent = span.parent_id if span.parent_id in by_id else None
        children[parent].append(span)
    for siblings in children.values():
        siblings.sort(key=lambda s: (s.start_ns, s.span_id))

    lines: List[str] = []

    def render(span: Span, depth: int) -> None:
        indent = "  " * depth
        duration = (
            "event" if span.is_event else f"{span.duration_seconds * 1000:.2f} ms"
        )
        attrs = _format_attributes(span)
        lines.append(
            f"{indent}{span.name}  [{duration}]" + (f"  {attrs}" if attrs else "")
        )
        kids = children.get(span.span_id, [])
        events = [k for k in kids if k.is_event]
        timed = [k for k in kids if not k.is_event]
        shown_events = events if max_events is None else events[:max_events]
        for kid in sorted(timed + shown_events, key=lambda s: (s.start_ns, s.span_id)):
            render(kid, depth + 1)
        hidden = len(events) - len(shown_events)
        if hidden > 0:
            lines.append(f"{'  ' * (depth + 1)}... {hidden} more events")

    for root in children.get(None, []):
        render(root, 0)
    return "\n".join(lines)
