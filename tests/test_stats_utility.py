"""Release utility metrics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import GenomicsError
from repro.stats.utility import (
    retention_rate,
    significance_mass_retained,
    top_k_recall,
    utility_report,
)


@pytest.fixture()
def stats():
    # SNP 3 is the strongest hit, then 7, then 1; the rest are near-null.
    return np.array([0.5, 8.0, 0.2, 50.0, 0.1, 0.4, 0.3, 20.0, 0.6, 0.2])


class TestRetention:
    def test_basic(self):
        assert retention_rate([0, 1, 2], 10) == 0.3
        assert retention_rate([], 10) == 0.0
        assert retention_rate(list(range(10)), 10) == 1.0

    def test_validation(self):
        with pytest.raises(GenomicsError):
            retention_rate([0], 0)
        with pytest.raises(GenomicsError):
            retention_rate([10], 10)


class TestTopKRecall:
    def test_full_recall(self, stats):
        assert top_k_recall([3, 7, 1], stats, 3) == 1.0

    def test_partial_recall(self, stats):
        assert top_k_recall([3, 0], stats, 3) == pytest.approx(1 / 3)

    def test_zero_recall(self, stats):
        assert top_k_recall([0, 2, 4], stats, 3) == 0.0

    def test_validation(self, stats):
        with pytest.raises(GenomicsError):
            top_k_recall([0], stats, 0)
        with pytest.raises(GenomicsError):
            top_k_recall([0], stats, 11)
        with pytest.raises(GenomicsError):
            top_k_recall([0, 0], stats, 3)
        with pytest.raises(GenomicsError):
            top_k_recall([99], stats, 3)


class TestSignificanceMass:
    def test_mass_weighting(self, stats):
        total = stats.sum()
        assert significance_mass_retained([3], stats) == pytest.approx(
            50.0 / total
        )
        # Many null SNPs carry little mass.
        nulls = significance_mass_retained([0, 2, 4, 5, 6, 8, 9], stats)
        assert nulls < 0.05

    def test_empty_release(self, stats):
        assert significance_mass_retained([], stats) == 0.0

    def test_all_null_statistics(self):
        zero = np.zeros(4)
        assert significance_mass_retained([0, 1, 2, 3], zero) == 1.0
        assert significance_mass_retained([0], zero) == 0.0

    def test_negative_statistics_rejected(self):
        with pytest.raises(GenomicsError):
            significance_mass_retained([0], np.array([-1.0]))


class TestUtilityReport:
    def test_report_fields(self, stats):
        report = utility_report([3, 7, 0], stats)
        assert report.num_desired == 10
        assert report.num_released == 3
        assert report.retention == 0.3
        assert 0 < report.significance_mass <= 1
        assert "released 3/10" in str(report)

    def test_report_on_protocol_release(self, small_cohort, study_result):
        """Utility of an actual GenDPR release against full-study stats."""
        from repro.stats import pearson_chi_square

        full_stats = pearson_chi_square(
            small_cohort.case.allele_counts(),
            small_cohort.reference.allele_counts(),
            small_cohort.case.num_individuals,
            small_cohort.reference.num_individuals,
        )
        report = utility_report(study_result.l_safe, full_stats)
        assert report.num_released == study_result.retained_after_lr
        assert 0.0 < report.retention < 1.0
