"""Branch (arc) coverage of the fault/integrity/supervisor layers.

The fuzzer's notion of "behaviour" is two-layered: the set of
``faults.*`` / ``integrity.*`` / ``shard.repair.*`` counters a run
fires (bridged from :mod:`repro.obs`), unioned with the *arc coverage*
of the detection-path modules — :mod:`repro.faults`,
:mod:`repro.core.integrity`, :mod:`repro.core.supervisor` and
:mod:`repro.core.resilience`.  Counters say *which* defences fired;
arcs say *which way* the code got there, which is what distinguishes
two plans that both end in, say, ``equivocations_detected``.

:class:`CoverageCollector` records executed line-to-line arcs inside
the target modules only.  On CPython >= 3.12 it rides
``sys.monitoring`` (per-location events are disabled for non-target
code after the first hit, so the steady-state cost outside the targets
is near zero); earlier interpreters fall back to ``sys.settrace`` +
``threading.settrace`` with frames outside the targets declining local
tracing.  Disabled collectors install nothing at all — the zero-cost
off switch the production paths rely on.
"""

from __future__ import annotations

import hashlib
import sys
import threading
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Optional, Set, Tuple

from ..errors import ConfigError

#: Modules whose detection paths are explicit coverage targets.
DEFAULT_TARGET_MODULES: Tuple[str, ...] = (
    "repro.faults.plan",
    "repro.faults.injector",
    "repro.core.integrity",
    "repro.core.supervisor",
    "repro.core.resilience",
)

#: An executed arc: (module, previous line, line).  The synthetic
#: previous line ``-first_lineno`` marks function entry.
Arc = Tuple[str, int, int]

_MONITORING = getattr(sys, "monitoring", None)


def _resolve_targets(modules: Iterable[str]) -> Dict[str, str]:
    """Map target module names to their source filenames."""
    import importlib

    files: Dict[str, str] = {}
    for name in modules:
        module = importlib.import_module(name)
        filename = getattr(module, "__file__", None)
        if not filename:
            raise ConfigError(f"coverage target {name!r} has no source file")
        files[filename] = name
    return files


class CoverageCollector:
    """Collects executed arcs of the target modules while entered.

    Usage::

        collector = CoverageCollector()
        with collector:
            run_the_plan()
        arcs = collector.arcs()

    One collector instance is reused across a whole fuzz session:
    ``reset()`` clears the arc set between plan executions while the
    (comparatively expensive) target resolution happens once.  A
    collector constructed with ``enabled=False`` installs no hooks and
    collects nothing, so the replay paths that do not need coverage
    pay nothing.
    """

    def __init__(
        self,
        modules: Iterable[str] = DEFAULT_TARGET_MODULES,
        *,
        enabled: bool = True,
    ):
        self.enabled = enabled
        self._files = _resolve_targets(modules) if enabled else {}
        self._arcs: Set[Arc] = set()
        self._lock = threading.Lock()
        self._depth = 0
        self._tool_id: Optional[int] = None
        #: sys.monitoring path: (thread id, code object) -> last line seen.
        self._last_line: Dict[Tuple[int, object], int] = {}

    # -- lifecycle ------------------------------------------------------------

    def __enter__(self) -> "CoverageCollector":
        if not self.enabled:
            return self
        self._depth += 1
        if self._depth > 1:
            return self
        if _MONITORING is not None:
            self._install_monitoring()
        else:
            self._install_settrace()
        return self

    def __exit__(self, *exc_info) -> None:
        if not self.enabled:
            return
        self._depth -= 1
        if self._depth > 0:
            return
        if _MONITORING is not None:
            self._uninstall_monitoring()
        else:
            sys.settrace(None)
            threading.settrace(None)  # type: ignore[arg-type]

    def reset(self) -> None:
        """Clear collected arcs (between plan executions)."""
        with self._lock:
            self._arcs.clear()
            self._last_line.clear()

    def arcs(self) -> FrozenSet[Arc]:
        with self._lock:
            return frozenset(self._arcs)

    # -- sys.settrace path (CPython < 3.12) -----------------------------------

    def _install_settrace(self) -> None:
        sys.settrace(self._global_trace)
        threading.settrace(self._global_trace)

    def _global_trace(self, frame, event, arg):
        code = frame.f_code
        module = self._files.get(code.co_filename)
        if module is None:
            # Decline local tracing for this frame entirely.
            return None
        prev = [-code.co_firstlineno]

        def _local_trace(frame, event, arg):
            if event == "line":
                arc = (module, prev[0], frame.f_lineno)
                prev[0] = frame.f_lineno
                with self._lock:
                    self._arcs.add(arc)
            return _local_trace

        return _local_trace

    # -- sys.monitoring path (CPython >= 3.12) --------------------------------

    def _acquire_tool_id(self) -> int:
        for tool_id in range(6):
            if _MONITORING.get_tool(tool_id) is None:
                _MONITORING.use_tool_id(tool_id, "repro.fuzz")
                return tool_id
        raise ConfigError("no free sys.monitoring tool id for coverage")

    def _install_monitoring(self) -> None:
        tool_id = self._acquire_tool_id()
        self._tool_id = tool_id
        _MONITORING.register_callback(
            tool_id, _MONITORING.events.LINE, self._on_line
        )
        _MONITORING.set_events(tool_id, _MONITORING.events.LINE)

    def _uninstall_monitoring(self) -> None:
        if self._tool_id is None:
            return
        _MONITORING.set_events(self._tool_id, 0)
        _MONITORING.register_callback(
            self._tool_id, _MONITORING.events.LINE, None
        )
        _MONITORING.free_tool_id(self._tool_id)
        self._tool_id = None

    def _on_line(self, code, line_number: int):
        module = self._files.get(code.co_filename)
        if module is None:
            # Never come back for this location.
            return _MONITORING.DISABLE
        key = (threading.get_ident(), code)
        with self._lock:
            prev = self._last_line.get(key, -code.co_firstlineno)
            self._arcs.add((module, prev, line_number))
            self._last_line[key] = line_number
        return None


@dataclass(frozen=True)
class Behaviour:
    """What one executed plan did: fired counters plus covered arcs."""

    counters: FrozenSet[str] = field(default_factory=frozenset)
    arcs: FrozenSet[Arc] = field(default_factory=frozenset)

    def arc_hash(self) -> str:
        """Order-independent digest of the covered arc set."""
        canonical = ";".join(
            f"{module}:{prev}:{line}"
            for module, prev, line in sorted(self.arcs)
        )
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    def key(self) -> str:
        """The behaviour key the corpus deduplicates on.

        Counter set crossed with the arc-set digest: two plans collide
        only when they fire the same defences *and* walk the same
        branches of the detection modules.
        """
        counter_sig = ",".join(sorted(self.counters))
        return f"{counter_sig}#{self.arc_hash()[:16]}"

    def units(self) -> FrozenSet[str]:
        """The individual coverage units this behaviour contributes.

        Each fired counter and each covered arc is one unit; the corpus
        keeps the minimal genome covering each unit (hypofuzz keeps the
        minimal covering example per branch the same way).
        """
        arc_units = {
            f"arc:{module}:{prev}:{line}"
            for module, prev, line in self.arcs
        }
        return frozenset(self.counters) | arc_units

    def to_json_dict(self) -> dict:
        return {
            "counters": sorted(self.counters),
            "arc_hash": self.arc_hash(),
            "arc_count": len(self.arcs),
        }
