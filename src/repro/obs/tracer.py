"""The tracer: context-manager/decorator API over span collection.

One process-wide :data:`TRACER` is shared by every instrumentation
point (protocol phases, ECALL dispatch, network sends, resource
sampling).  It starts *disabled*: ``span()``/``event()`` check a single
attribute and return a shared no-op handle, so un-traced runs pay one
attribute lookup per event and allocate nothing.

Enabling is scoped, not global state to forget about::

    collector = SpanCollector()
    with TRACER.activated(collector):
        with TRACER.span("study", study_id="s1"):
            ...

Span hierarchy is tracked per thread (a thread-local stack of open
span ids), so concurrent runs on separate threads produce correctly
parented — if interleaved — trees into whichever collector is active.
"""

from __future__ import annotations

import functools
import threading
import time
from contextlib import contextmanager
from typing import Any, Callable, Iterator, Optional, TypeVar

from .span import NULL_SINK, Span, SpanCollector

F = TypeVar("F", bound=Callable[..., Any])


class _NullSpanHandle:
    """Shared no-op stand-in for a span handle when tracing is off."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpanHandle":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False

    def annotate(self, **attributes: object) -> "_NullSpanHandle":
        return self

    def set_duration_seconds(self, seconds: float) -> "_NullSpanHandle":
        return self


#: Singleton returned by ``TRACER.span(...)`` while tracing is disabled.
NULL_SPAN = _NullSpanHandle()


class _SpanHandle:
    """Context manager finalising one live span into the collector."""

    __slots__ = ("_tracer", "span", "_override_ns")

    def __init__(self, tracer: "Tracer", span: Span):
        self._tracer = tracer
        self.span = span
        self._override_ns: Optional[int] = None

    def __enter__(self) -> "_SpanHandle":
        self._tracer._push(self.span.span_id)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._tracer._pop()
        if self._override_ns is not None:
            self.span.duration_ns = self._override_ns
        else:
            self.span.duration_ns = max(
                0, time.perf_counter_ns() - self.span.start_ns
            )
        if exc_type is not None:
            self.span.attributes.setdefault("error", exc_type.__name__)
        self._tracer._collector.add(self.span)
        return False

    def annotate(self, **attributes: object) -> "_SpanHandle":
        """Attach/overwrite attributes on the live span."""
        self.span.attributes.update(attributes)
        return self

    def set_duration_seconds(self, seconds: float) -> "_SpanHandle":
        """Report a modelled duration instead of raw wall time.

        The phase clock uses this to record the *parallel-corrected*
        phase time (see :mod:`repro.core.timing`), keeping the invariant
        that phase spans sum to the ``PhaseTimings`` totals.
        """
        self._override_ns = max(0, int(seconds * 1e9))
        return self


class Tracer:
    """Process-wide tracing front end; see module docstring."""

    def __init__(self) -> None:
        self._collector = NULL_SINK
        #: Fast-path switch; instrumentation reads only this when off.
        self.enabled = False
        #: Whether per-envelope network events are recorded (they are
        #: the highest-volume span source; disable for long runs).
        self.capture_messages = True
        self._local = threading.local()

    # -- span stack (per thread) ---------------------------------------------

    def _stack(self) -> list:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _push(self, span_id: int) -> None:
        self._stack().append(span_id)

    def _pop(self) -> None:
        self._stack().pop()

    def current_span_id(self) -> Optional[int]:
        """Id of the innermost open span on this thread, if any."""
        stack = self._stack()
        return stack[-1] if stack else None

    @contextmanager
    def propagated(self, span_id: Optional[int]) -> Iterator[None]:
        """Adopt ``span_id`` as this thread's current parent span.

        Span hierarchy is tracked per thread, so spans opened on a worker
        thread would otherwise become roots.  A fan-out captures
        :meth:`current_span_id` before dispatching and wraps each worker
        body in ``propagated(parent)``, keeping e.g. member ECALL spans
        parented under the round span that triggered them.  ``None``
        (tracing disabled, or no open span) is a no-op.
        """
        if span_id is None:
            yield
            return
        self._push(span_id)
        try:
            yield
        finally:
            self._pop()

    # -- recording ---------------------------------------------------------------

    @property
    def collector(self):
        return self._collector

    def span(self, name: str, **attributes: object):
        """Open a span; use as ``with TRACER.span("phase", label=l):``."""
        if not self.enabled:
            return NULL_SPAN
        return _SpanHandle(
            self,
            Span(
                name=name,
                span_id=self._collector.next_id(),
                parent_id=self.current_span_id(),
                start_ns=time.perf_counter_ns(),
                attributes=attributes,
            ),
        )

    def event(self, name: str, **attributes: object) -> None:
        """Record a point event (zero-duration span) under the open span."""
        if not self.enabled:
            return
        self._collector.add(
            Span(
                name=name,
                span_id=self._collector.next_id(),
                parent_id=self.current_span_id(),
                start_ns=time.perf_counter_ns(),
                duration_ns=0,
                attributes=attributes,
            )
        )

    # -- activation ---------------------------------------------------------------

    @contextmanager
    def activated(
        self,
        collector: Optional[SpanCollector] = None,
        *,
        capture_messages: bool = True,
    ) -> Iterator[SpanCollector]:
        """Route spans into ``collector`` for the duration of the block.

        Nests: the previous sink (possibly the null sink) is restored on
        exit, even on error.
        """
        sink = collector if collector is not None else SpanCollector()
        previous = (self._collector, self.enabled, self.capture_messages)
        self._collector = sink
        self.enabled = True
        self.capture_messages = capture_messages
        try:
            yield sink
        finally:
            self._collector, self.enabled, self.capture_messages = previous


#: The process-wide tracer every instrumentation point uses.
TRACER = Tracer()


def traced(name: Optional[str] = None, **attributes: object) -> Callable[[F], F]:
    """Decorator form: trace every call of ``func`` as one span."""

    def decorate(func: F) -> F:
        span_name = name or func.__qualname__

        @functools.wraps(func)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            if not TRACER.enabled:
                return func(*args, **kwargs)
            with TRACER.span(span_name, **attributes):
                return func(*args, **kwargs)

        return wrapper  # type: ignore[return-value]

    return decorate
