"""Dynamic federated studies: re-assessment as genomes arrive.

GenDPR builds on DyPS's setting, where GWAS are "computed in a federated
and dynamic manner, i.e., as soon as new genomes become available"
(Section 2.2).  This module provides that dynamic driver on top of the
one-shot protocol:

* members contribute case-genome **batches** over time,
* at each epoch close the federation re-runs the full three-phase
  verification over everything accumulated so far (fresh attested
  session per epoch — keys are never reused across assessment rounds),
* releases are gated on a minimum cohort size (tiny early cohorts are
  trivially identifiable, so nothing is published below the floor), and
* a release ledger tracks churn: SNPs newly released, still released,
  and *revoked* — previously published SNPs that the larger cohort now
  deems unsafe.  Revocations are the dynamic setting's interdependence
  hazard (the I-GWAS problem): an already-public statistic cannot be
  unpublished, so the ledger surfaces them for the federation's
  governance process instead of silently dropping them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..config import StudyConfig
from ..errors import ProtocolError
from ..genomics.genotype import GenotypeMatrix
from ..genomics.partition import LocalDataset
from ..genomics.population import Cohort
from ..genomics.snp import SnpPanel
from .federation import build_federation
from .interdependent import assess_interdependent_release
from .phases import StudyResult
from .protocol import GenDPRProtocol


@dataclass(frozen=True)
class EpochReport:
    """Outcome of one dynamic assessment round."""

    epoch: int
    total_case_genomes: int
    assessed: bool
    result: Optional[StudyResult]
    newly_released: Tuple[int, ...] = ()
    still_released: Tuple[int, ...] = ()
    revoked: Tuple[int, ...] = ()

    @property
    def released(self) -> Tuple[int, ...]:
        return tuple(sorted(set(self.newly_released) | set(self.still_released)))


class DynamicStudy:
    """Drives repeated GenDPR assessments over a growing cohort."""

    def __init__(
        self,
        panel: SnpPanel,
        reference: GenotypeMatrix,
        config: StudyConfig,
        member_ids: List[str],
        *,
        min_cohort_size: int = 100,
        interdependent: bool = False,
    ):
        """Args:
            interdependent: when True, each epoch's new release is gated
                on the *cumulative* exposure of everything published in
                earlier epochs (see :mod:`repro.core.interdependent`):
                published SNPs never leave the ledger, and new SNPs are
                admitted only while the combined detector power stays
                below the study's threshold.
        """
        if reference.num_snps != len(panel):
            raise ProtocolError("reference does not cover the study panel")
        if config.snp_count != len(panel):
            raise ProtocolError("config does not cover the study panel")
        if not member_ids:
            raise ProtocolError("a dynamic study needs at least one member")
        if len(set(member_ids)) != len(member_ids):
            raise ProtocolError("duplicate member ids")
        if min_cohort_size < 1:
            raise ProtocolError("min_cohort_size must be positive")
        self._panel = panel
        self._reference = reference
        self._config = config
        self._member_ids = sorted(member_ids)
        self._min_cohort_size = min_cohort_size
        self._shards: Dict[str, List[GenotypeMatrix]] = {
            member: [] for member in self._member_ids
        }
        self._pending: Dict[str, List[GenotypeMatrix]] = {
            member: [] for member in self._member_ids
        }
        self._epoch = 0
        self._released: set = set()
        self._interdependent = interdependent
        self.history: List[EpochReport] = []

    # -- Data arrival -----------------------------------------------------------

    def submit_batch(self, member_id: str, genomes: GenotypeMatrix) -> None:
        """Queue a new batch of case genomes at a member's premises.

        The batch participates from the *next* epoch close; data never
        leaves the member (the epoch's federation seals it locally).
        """
        if member_id not in self._pending:
            raise ProtocolError(f"unknown member {member_id!r}")
        if genomes.num_snps != len(self._panel):
            raise ProtocolError("batch does not cover the study panel")
        if genomes.num_individuals == 0:
            raise ProtocolError("batch is empty")
        self._pending[member_id].append(genomes)

    @property
    def total_case_genomes(self) -> int:
        """Genomes that would participate if an epoch closed now."""
        return sum(
            matrix.num_individuals
            for member in self._member_ids
            for matrix in self._shards[member] + self._pending[member]
        )

    @property
    def released_snps(self) -> Tuple[int, ...]:
        return tuple(sorted(self._released))

    # -- Epochs -----------------------------------------------------------------

    def _member_dataset(self, member_id: str) -> Optional[LocalDataset]:
        matrices = self._shards[member_id]
        if not matrices:
            return None
        return LocalDataset(
            gdo_id=member_id, case=GenotypeMatrix.vstack(matrices)
        )

    def close_epoch(self) -> EpochReport:
        """Absorb pending batches and re-run the verification.

        Returns the epoch report; when the accumulated cohort is below
        the minimum size the assessment is skipped (``assessed=False``)
        and nothing is released.
        """
        self._epoch += 1
        for member in self._member_ids:
            self._shards[member].extend(self._pending[member])
            self._pending[member] = []

        datasets = [
            dataset
            for member in self._member_ids
            if (dataset := self._member_dataset(member)) is not None
        ]
        total = sum(d.num_case for d in datasets)
        if not datasets or total < self._min_cohort_size:
            report = EpochReport(
                epoch=self._epoch,
                total_case_genomes=total,
                assessed=False,
                result=None,
                still_released=tuple(sorted(self._released)),
            )
            self.history.append(report)
            return report

        case = GenotypeMatrix.vstack([d.case for d in datasets])
        cohort = Cohort(
            panel=self._panel,
            case=case,
            control=self._reference,
            reference=self._reference,
        )
        config = StudyConfig(
            snp_count=self._config.snp_count,
            thresholds=self._config.thresholds,
            collusion=self._config.collusion,
            seed=self._config.seed + self._epoch,
            study_id=f"{self._config.study_id}/epoch-{self._epoch}",
        )
        federation = build_federation(config, datasets, cohort)
        result = GenDPRProtocol(federation).run()

        safe_now = set(result.l_safe)
        if self._interdependent:
            # Published statistics are public forever: new SNPs must be
            # safe *jointly* with everything already out.
            assessment = assess_interdependent_release(
                cohort,
                sorted(self._released),
                sorted(safe_now - self._released),
                alpha=self._config.thresholds.false_positive_rate,
                beta=self._config.thresholds.power_threshold,
            )
            newly = assessment.admitted
            still = tuple(sorted(self._released))
            revoked = tuple(sorted(self._released - safe_now))
            self._released |= set(newly)
        else:
            newly = tuple(sorted(safe_now - self._released))
            still = tuple(sorted(safe_now & self._released))
            revoked = tuple(sorted(self._released - safe_now))
            self._released = set(still) | set(newly)
        report = EpochReport(
            epoch=self._epoch,
            total_case_genomes=total,
            assessed=True,
            result=result,
            newly_released=newly,
            still_released=still,
            revoked=revoked,
        )
        self.history.append(report)
        return report

    def revocation_exposure(self) -> Tuple[int, ...]:
        """Every SNP that was ever published and later deemed unsafe.

        These statistics are already in the world; the federation's
        governance (or a DP-perturbed re-release) has to deal with them.
        """
        exposed: set = set()
        for report in self.history:
            exposed |= set(report.revoked)
        return tuple(sorted(exposed))
