"""Sharded aggregation equivalence: the load-bearing invariant.

SNP-range sharding with tree aggregation must be a pure execution-plan
change: for every collusion mode, the released SNP set (and every other
decision field) is bit-identical across shard counts.  Integer allele
counts and pair moments combine associatively, so any tree grouping
sums to exactly the flat total — these tests enforce that end to end,
the same way sequential-vs-parallel equivalence is enforced.
"""

from __future__ import annotations

import pytest

from repro.config import (
    CollusionPolicy,
    ObservabilityConfig,
    ShardingConfig,
    StudyConfig,
)
from repro.core.protocol import run_study
from repro.errors import ProtocolError

SHARD_COUNTS = (1, 2, 4)
MEMBERS = 5


def _decisions(result):
    collusion = None
    if result.collusion is not None:
        collusion = {
            "baseline_safe": list(result.collusion.baseline_safe),
            "outcomes": sorted(
                (list(o.member_ids), o.f, list(o.safe_snps))
                for o in result.collusion.outcomes
            ),
        }
    return {
        "l_prime": list(result.l_prime),
        "l_double_prime": list(result.l_double_prime),
        "l_safe": list(result.l_safe),
        "release_power": result.release_power,
        "collusion": collusion,
    }


@pytest.fixture(scope="module", params=(0, 1), ids=("f0", "f1"))
def sharded_results(request, small_cohort):
    """One study per shard count at this collusion setting, observed."""
    f = request.param
    collusion = CollusionPolicy((f,)) if f else CollusionPolicy.none()
    results = {}
    for shards in SHARD_COUNTS:
        config = StudyConfig(
            snp_count=small_cohort.num_snps,
            collusion=collusion,
            seed=5,
            study_id=f"shard-eq-f{f}",
            sharding=ShardingConfig.over(shards),
            observability=ObservabilityConfig(enabled=True),
        )
        results[shards] = run_study(small_cohort, config, MEMBERS)
    return results


class TestDecisionEquivalence:
    def test_bit_identical_across_shard_counts(self, sharded_results):
        baseline = _decisions(sharded_results[1])
        for shards in SHARD_COUNTS[1:]:
            assert _decisions(sharded_results[shards]) == baseline

    def test_sharded_run_is_nontrivial(self, sharded_results):
        result = sharded_results[max(SHARD_COUNTS)]
        assert 0 < result.retained_after_lr <= result.retained_after_maf

    def test_fingerprint_differs_but_outcome_does_not(self, sharded_results):
        """Shard count is part of the run identity, never the outcome."""
        prints = {
            s: r.observability.config_fingerprint
            for s, r in sharded_results.items()
        }
        assert len(set(prints.values())) == len(SHARD_COUNTS)


class TestShardAccounting:
    def test_report_metrics_present(self, sharded_results):
        for shards in SHARD_COUNTS[1:]:
            report = sharded_results[shards].observability
            gauges = report.metrics["gauges"]
            counters = report.metrics["counters"]
            assert gauges["shard.ranges"] == shards
            assert gauges["shard.tree_depth"] >= 1
            assert counters["shard.partials_emitted"] > 0
            assert (
                counters["shard.partials_ingested"]
                == counters["shard.partials_emitted"]
            )
            assert report.meta["sharding"]["num_shards"] == shards

    def test_flat_run_reports_no_shard_metrics(self, sharded_results):
        report = sharded_results[1].observability
        assert "shard.ranges" not in report.metrics["gauges"]
        assert "sharding" not in report.meta

    def test_partial_frames_shrink_with_shard_count(self, sharded_results):
        """Per-enclave peak partial size scales as O(L/S)."""
        peaks = {}
        for shards in SHARD_COUNTS[1:]:
            gauges = sharded_results[shards].observability.metrics["gauges"]
            peaks[shards] = max(
                value
                for name, value in gauges.items()
                if name.startswith("shard.peak_partial_bytes.")
            )
            width = gauges["shard.max_width"]
            assert width == -(-small_cohort_snps(sharded_results) // shards)
        assert peaks[4] < peaks[2]

    def test_leader_fan_in_is_tree_arity(self, sharded_results):
        """The root ingests ≤2 frames per shard task, never G-1."""
        for shards in SHARD_COUNTS[1:]:
            result = sharded_results[shards]
            gauges = result.observability.metrics["gauges"]
            rounds = gauges["shard.aggregation_rounds"]
            assert rounds == gauges["shard.tree_depth"]
            # 5 members → depth-2 heap: the root's two children are the
            # only nodes that ever deliver to the leader.
            assert rounds == 2


def small_cohort_snps(results):
    return results[1].l_des


class TestShardGuards:
    def test_sharding_requires_mesh_capable_membership(self, small_cohort):
        """G=1 sharded studies degenerate cleanly (no tree, no peers)."""
        config = StudyConfig(
            snp_count=small_cohort.num_snps,
            seed=5,
            study_id="shard-solo",
            sharding=ShardingConfig.over(2),
        )
        result = run_study(small_cohort, config, 1)
        assert result.retained_after_lr > 0

    def test_star_substrate_rejected_for_sharded_study(self, small_cohort):
        from repro.core.federation import bind_study, provision_substrate
        from repro.crypto.rng import DeterministicRng
        from repro.genomics.partition import partition_cohort

        datasets = partition_cohort(small_cohort, 3)
        config = StudyConfig(
            snp_count=small_cohort.num_snps,
            seed=5,
            study_id="shard-star",
            sharding=ShardingConfig.over(2),
        )
        member_ids = [f"gdo-{i}" for i in range(3)]
        substrate = provision_substrate(
            member_ids,
            rng=DeterministicRng("test/shard-star"),
            topology="star",
            star_center=member_ids[0],
        )
        with pytest.raises(ProtocolError):
            bind_study(substrate, config, datasets, small_cohort)


class TestCliShards:
    def test_run_with_shards_flag(self, tmp_path, small_cohort, capsys):
        import json

        from repro.cli import main, save_cohort_bundle

        cohort_file = str(tmp_path / "cohort.npz")
        save_cohort_bundle(cohort_file, small_cohort)
        json_out = str(tmp_path / "result.json")
        flat_out = str(tmp_path / "flat.json")
        assert main(
            [
                "run",
                "--cohort", cohort_file,
                "--members", "3",
                "--shards", "4",
                "--json", json_out,
            ]
        ) == 0
        capsys.readouterr()
        assert main(
            [
                "run",
                "--cohort", cohort_file,
                "--members", "3",
                "--json", flat_out,
            ]
        ) == 0
        sharded = json.loads(open(json_out).read())
        flat = json.loads(open(flat_out).read())
        assert sharded["l_safe"] == flat["l_safe"]
        assert sharded["l_prime"] == flat["l_prime"]
