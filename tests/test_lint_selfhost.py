"""Self-hosting: the shipped ``src/`` tree passes its own linter.

This is the enforcement test behind the CI lint job — if a change
introduces a non-baselined R1–R5 violation anywhere in ``src/``, it
fails here before it fails in CI.
"""

from __future__ import annotations

import pathlib
import sys

import pytest

from repro.lint import (
    Baseline,
    DEFAULT_SCOPES,
    LintConfig,
    ScopeMap,
    load_config,
    run_lint,
)

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"


def _repo_config() -> LintConfig:
    if sys.version_info >= (3, 11):
        return load_config(REPO_ROOT / "lint.toml")
    # Pre-tomllib interpreters fall back to the built-in scope map,
    # which lint.toml mirrors.
    return LintConfig()


def test_shipped_tree_is_lint_clean():
    config = _repo_config()
    baseline_path = REPO_ROOT / (config.baseline_path or "lint-baseline.json")
    baseline = (
        Baseline.load(baseline_path) if baseline_path.is_file() else Baseline()
    )
    result = run_lint([SRC], config, baseline)
    assert result.clean, "\n".join(f.render() for f in result.findings)
    assert result.files_scanned > 50  # whole tree, not a subset


def test_shipped_tree_passes_the_flow_rules():
    # The acceptance bar for R6-R8: zero unbaselined flow findings over
    # src/, every declassifier call site carries a marker, and no
    # marker is orphaned.
    config = _repo_config().with_flow(True)
    result = run_lint([SRC], config)
    flow_findings = [
        f for f in result.findings if f.rule in {"R6", "R7", "R8"}
    ]
    assert flow_findings == [], "\n".join(
        f.render() for f in flow_findings
    )
    inventory = result.artifacts["declassifications"]
    assert inventory, "expected a non-empty declassification inventory"
    assert all(entry["marked"] for entry in inventory)
    assert not any(entry.get("orphan") for entry in inventory)
    # Call-graph artifact covers the whole tree.
    assert result.artifacts["callgraph"]["functions"] > 500


def test_baseline_is_empty():
    # All grandfathered violations have been fixed; keep it that way.
    baseline = Baseline.load(REPO_ROOT / "lint-baseline.json")
    assert not baseline.entries


def test_default_scopes_cover_core_packages():
    scope_map = ScopeMap(DEFAULT_SCOPES)
    assert "enclave" in scope_map.scopes_for("repro.tee.channel")
    assert "protocol" in scope_map.scopes_for("repro.core.phases")
    assert "crypto" in scope_map.scopes_for("repro.crypto.mac")
    assert "resilience" in scope_map.scopes_for("repro.net.network")
    assert "obs" in scope_map.scopes_for("repro.obs.tracing")
    assert "faults" in scope_map.scopes_for("repro.faults.plan")
    assert not scope_map.scopes_for("repro.genomics.genotype")


@pytest.mark.skipif(sys.version_info < (3, 11), reason="tomllib is 3.11+")
def test_repo_lint_toml_matches_builtin_defaults():
    # lint.toml exists so CI and editors agree with the library default;
    # the two must not drift silently.
    config = load_config(REPO_ROOT / "lint.toml")
    assert config.scope_map.as_dict() == ScopeMap(DEFAULT_SCOPES).as_dict()
