"""Pure-Python AES block cipher (FIPS-197).

This is the *reference* cipher of the reproduction: the paper encrypts all
exchanged data with AES-256, and this module provides a dependency-free
implementation validated against the FIPS-197 Appendix C known-answer
vectors (see ``tests/test_crypto_aes.py``).  Bulk payloads use the faster
:mod:`repro.crypto.stream` AEAD; this block cipher backs the small control
messages and the key-wrapping paths where byte-for-byte fidelity to the
standard matters more than throughput.

Only the raw block operations live here; chaining modes are in
:mod:`repro.crypto.modes`.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from ..errors import InvalidKeyError

BLOCK_SIZE = 16

# ---------------------------------------------------------------------------
# GF(2^8) arithmetic and table construction
# ---------------------------------------------------------------------------
# The S-box is derived, not transcribed: each byte is replaced by its
# multiplicative inverse in GF(2^8) modulo the AES polynomial x^8+x^4+x^3+x+1
# followed by the standard affine transformation.  Deriving the tables keeps
# the implementation auditable against the specification text itself.


def _xtime(a: int) -> int:
    """Multiply by x (i.e. 2) in GF(2^8) modulo the AES polynomial."""
    a <<= 1
    if a & 0x100:
        a ^= 0x11B
    return a & 0xFF


def _gf_mul(a: int, b: int) -> int:
    """Carry-less multiplication in GF(2^8) modulo the AES polynomial."""
    result = 0
    while b:
        if b & 1:
            result ^= a
        a = _xtime(a)
        b >>= 1
    return result


def _gf_inverse(a: int) -> int:
    """Multiplicative inverse in GF(2^8); maps 0 to 0 per the standard."""
    if a == 0:
        return 0
    # a^254 == a^-1 because the multiplicative group has order 255.
    result = 1
    power = a
    exponent = 254
    while exponent:
        if exponent & 1:
            result = _gf_mul(result, power)
        power = _gf_mul(power, power)
        exponent >>= 1
    return result


def _rotl8(value: int, shift: int) -> int:
    return ((value << shift) | (value >> (8 - shift))) & 0xFF


def _build_sbox() -> Tuple[bytes, bytes]:
    sbox = bytearray(256)
    inverse = bytearray(256)
    for byte in range(256):
        inv = _gf_inverse(byte)
        value = (
            inv
            ^ _rotl8(inv, 1)
            ^ _rotl8(inv, 2)
            ^ _rotl8(inv, 3)
            ^ _rotl8(inv, 4)
            ^ 0x63
        )
        sbox[byte] = value
        inverse[value] = byte
    return bytes(sbox), bytes(inverse)


SBOX, INV_SBOX = _build_sbox()

#: Round constants for the key schedule, rcon[i] = x^(i-1) in GF(2^8).
_RCON = [0] * 11
_value = 1
for _i in range(1, 11):
    _RCON[_i] = _value
    _value = _xtime(_value)


# ---------------------------------------------------------------------------
# Key schedule
# ---------------------------------------------------------------------------


def _sub_word(word: Sequence[int]) -> List[int]:
    return [SBOX[b] for b in word]


def _rot_word(word: Sequence[int]) -> List[int]:
    return list(word[1:]) + [word[0]]


def expand_key(key: bytes) -> List[List[int]]:
    """Expand a 16/24/32-byte key into the per-round key schedule.

    Returns a list of 4-byte words; round ``r`` uses words ``4r .. 4r+3``.
    """
    if len(key) not in (16, 24, 32):
        raise InvalidKeyError(f"AES key must be 16, 24 or 32 bytes, got {len(key)}")
    nk = len(key) // 4
    rounds = nk + 6
    words: List[List[int]] = [list(key[4 * i : 4 * i + 4]) for i in range(nk)]
    for i in range(nk, 4 * (rounds + 1)):
        temp = list(words[i - 1])
        if i % nk == 0:
            temp = _sub_word(_rot_word(temp))
            temp[0] ^= _RCON[i // nk]
        elif nk > 6 and i % nk == 4:
            temp = _sub_word(temp)
        words.append([a ^ b for a, b in zip(words[i - nk], temp)])
    return words


def _num_rounds(key: bytes) -> int:
    return len(key) // 4 + 6


# ---------------------------------------------------------------------------
# Block transformations (state is a flat 16-byte column-major list)
# ---------------------------------------------------------------------------


def _add_round_key(state: List[int], words: List[List[int]], round_index: int) -> None:
    offset = 4 * round_index
    for col in range(4):
        word = words[offset + col]
        for row in range(4):
            state[4 * col + row] ^= word[row]


def _sub_bytes(state: List[int]) -> None:
    for i in range(16):
        state[i] = SBOX[state[i]]


def _inv_sub_bytes(state: List[int]) -> None:
    for i in range(16):
        state[i] = INV_SBOX[state[i]]


def _shift_rows(state: List[int]) -> None:
    for row in range(1, 4):
        values = [state[4 * col + row] for col in range(4)]
        shifted = values[row:] + values[:row]
        for col in range(4):
            state[4 * col + row] = shifted[col]


def _inv_shift_rows(state: List[int]) -> None:
    for row in range(1, 4):
        values = [state[4 * col + row] for col in range(4)]
        shifted = values[-row:] + values[:-row]
        for col in range(4):
            state[4 * col + row] = shifted[col]


def _mix_single_column(column: List[int]) -> List[int]:
    a0, a1, a2, a3 = column
    return [
        _xtime(a0) ^ _xtime(a1) ^ a1 ^ a2 ^ a3,
        a0 ^ _xtime(a1) ^ _xtime(a2) ^ a2 ^ a3,
        a0 ^ a1 ^ _xtime(a2) ^ _xtime(a3) ^ a3,
        _xtime(a0) ^ a0 ^ a1 ^ a2 ^ _xtime(a3),
    ]


def _mix_columns(state: List[int]) -> None:
    for col in range(4):
        state[4 * col : 4 * col + 4] = _mix_single_column(state[4 * col : 4 * col + 4])


def _inv_mix_single_column(column: List[int]) -> List[int]:
    a0, a1, a2, a3 = column
    return [
        _gf_mul(a0, 0x0E) ^ _gf_mul(a1, 0x0B) ^ _gf_mul(a2, 0x0D) ^ _gf_mul(a3, 0x09),
        _gf_mul(a0, 0x09) ^ _gf_mul(a1, 0x0E) ^ _gf_mul(a2, 0x0B) ^ _gf_mul(a3, 0x0D),
        _gf_mul(a0, 0x0D) ^ _gf_mul(a1, 0x09) ^ _gf_mul(a2, 0x0E) ^ _gf_mul(a3, 0x0B),
        _gf_mul(a0, 0x0B) ^ _gf_mul(a1, 0x0D) ^ _gf_mul(a2, 0x09) ^ _gf_mul(a3, 0x0E),
    ]


def _inv_mix_columns(state: List[int]) -> None:
    for col in range(4):
        state[4 * col : 4 * col + 4] = _inv_mix_single_column(
            state[4 * col : 4 * col + 4]
        )


class AES:
    """AES block cipher with a precomputed key schedule.

    The instance is immutable and safe to share; the key material is held
    only as the expanded schedule.
    """

    def __init__(self, key: bytes):
        self._schedule = expand_key(key)
        self._rounds = _num_rounds(key)
        self.key_bits = len(key) * 8

    def encrypt_block(self, block: bytes) -> bytes:
        """Encrypt exactly one 16-byte block."""
        if len(block) != BLOCK_SIZE:
            raise ValueError(f"block must be {BLOCK_SIZE} bytes, got {len(block)}")
        state = list(block)
        _add_round_key(state, self._schedule, 0)
        for round_index in range(1, self._rounds):
            _sub_bytes(state)
            _shift_rows(state)
            _mix_columns(state)
            _add_round_key(state, self._schedule, round_index)
        _sub_bytes(state)
        _shift_rows(state)
        _add_round_key(state, self._schedule, self._rounds)
        return bytes(state)

    def decrypt_block(self, block: bytes) -> bytes:
        """Decrypt exactly one 16-byte block."""
        if len(block) != BLOCK_SIZE:
            raise ValueError(f"block must be {BLOCK_SIZE} bytes, got {len(block)}")
        state = list(block)
        _add_round_key(state, self._schedule, self._rounds)
        for round_index in range(self._rounds - 1, 0, -1):
            _inv_shift_rows(state)
            _inv_sub_bytes(state)
            _add_round_key(state, self._schedule, round_index)
            _inv_mix_columns(state)
        _inv_shift_rows(state)
        _inv_sub_bytes(state)
        _add_round_key(state, self._schedule, 0)
        return bytes(state)
