"""Command-line interface.

Five subcommands cover the adoption path of a federation operator:

* ``repro generate`` — create a synthetic study cohort and save it as a
  ``.npz`` bundle (or import one produced elsewhere with the same keys).
* ``repro run`` — execute a GenDPR study over a saved cohort, printing
  the per-phase selection, timings and traffic, optionally with
  collusion tolerance and a JSON result dump.  ``--trace out.jsonl``
  records a span trace and ``--report report.json`` a full RunReport
  (see ``docs/OBSERVABILITY.md``).
* ``repro report`` — pretty-print a saved RunReport, optionally
  converting its spans to Chrome ``about://tracing`` format.
* ``repro serve`` — run a batch of studies through the long-lived
  federation service (warm enclave pools, fair round scheduler,
  admission control; see ``docs/SERVICE.md``), with optional scheduler
  metrics and per-study result artifacts.
* ``repro submit`` — submit a single study through the service request
  path (admission → warm slot → per-request RunReport).
* ``repro attack`` — evaluate the LR membership detector against an
  arbitrary SNP set of a saved cohort (e.g. to double-check a release).
* ``repro info`` — describe a saved cohort bundle.
* ``repro lint`` — run the domain-aware static analyser over the
  source tree (enclave-boundary, determinism, crypto-misuse, lock and
  error-taxonomy rules; see ``docs/STATIC_ANALYSIS.md``).

Installed as ``python -m repro`` (see ``repro/__main__.py``).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Optional, Sequence

import numpy as np

from .attacks import evaluate_attack
from .config import (
    CollusionPolicy,
    FaultConfig,
    IntegrityConfig,
    ObservabilityConfig,
    PrivacyThresholds,
    ResilienceConfig,
    ShardingConfig,
    StudyConfig,
)
from .core.protocol import run_study
from .errors import ReproError, ServiceOverloadedError
from .genomics import Cohort, GenotypeMatrix, SnpPanel, SyntheticSpec, generate_cohort
from .fuzz.cli import configure_parser as configure_fuzz_parser
from .lint.cli import configure_parser as configure_lint_parser
from .obs import RunReport, write_chrome_trace, write_jsonl
from .serve import FederationService, ServiceConfig

_BUNDLE_KEYS = ("case", "control")


def save_cohort_bundle(path: str, cohort: Cohort) -> None:
    """Persist a cohort as a compressed ``.npz`` bundle."""
    np.savez_compressed(
        path,
        case=cohort.case.array(),
        control=cohort.control.array(),
    )


def load_cohort_bundle(path: str) -> Cohort:
    """Load a cohort bundle written by :func:`save_cohort_bundle`."""
    with np.load(path) as bundle:
        missing = [key for key in _BUNDLE_KEYS if key not in bundle]
        if missing:
            raise ReproError(f"cohort bundle misses arrays: {missing}")
        case = GenotypeMatrix(bundle["case"])
        control = GenotypeMatrix(bundle["control"])
    panel = SnpPanel.synthetic(case.num_snps)
    return Cohort.control_as_reference(panel, case, control)


def _cmd_generate(args: argparse.Namespace) -> int:
    spec = SyntheticSpec(
        num_snps=args.snps,
        num_case=args.case,
        num_control=args.control,
        num_sites=args.sites,
        site_effect_sd=args.site_effect,
        case_drift_sd=args.drift,
        seed=args.seed,
    )
    cohort, _ = generate_cohort(spec)
    save_cohort_bundle(args.out, cohort)
    print(f"wrote {args.out}: {cohort.describe()}")
    return 0


def _collusion_policy(value: Optional[str], members: int) -> CollusionPolicy:
    if value is None:
        return CollusionPolicy.none()
    if value == "conservative":
        return CollusionPolicy.conservative(members)
    return CollusionPolicy(tuple(int(f) for f in value.split(",")))


def _cmd_run(args: argparse.Namespace) -> int:
    cohort = load_cohort_bundle(args.cohort)
    thresholds = PrivacyThresholds(
        maf_cutoff=args.maf_cutoff,
        ld_cutoff=args.ld_cutoff,
        false_positive_rate=args.alpha,
        power_threshold=args.beta,
    )
    observe = bool(args.trace or args.report)
    faults = FaultConfig.off()
    if args.chaos_seed is not None:
        faults = FaultConfig.chaos(
            args.chaos_seed, intensity=args.chaos_intensity
        )
    # An armed fault plan without the supervised runtime would fail
    # unmasked, so a chaos seed implies supervision.
    supervised = args.supervised or args.chaos_seed is not None
    config = StudyConfig(
        snp_count=cohort.num_snps,
        thresholds=thresholds,
        collusion=_collusion_policy(args.collusion, args.members),
        sharding=ShardingConfig.over(args.shards),
        seed=args.seed,
        study_id=args.study_id,
        observability=(
            ObservabilityConfig.tracing() if observe else ObservabilityConfig.off()
        ),
        integrity=(
            IntegrityConfig.on() if args.integrity else IntegrityConfig.off()
        ),
        faults=faults,
        resilience=(
            ResilienceConfig.supervised()
            if supervised
            else ResilienceConfig.off()
        ),
    )
    result = run_study(cohort, config, args.members)

    print(result.summary())
    for label, ms in result.timings.as_milliseconds().items():
        print(f"  {label:<30s} {ms:10.1f} ms")
    print(f"  network: {result.network_bytes:,} bytes "
          f"/ {result.network_messages} messages")
    if result.collusion is not None:
        vulnerable = result.collusion.vulnerable_snps(tuple(result.l_safe))
        print(f"  collusion: {result.collusion.combinations_evaluated} "
              f"combinations, {len(vulnerable)} vulnerable SNPs withheld")
    if result.observability is not None:
        repair = result.observability.meta.get("sharding", {}).get("repair")
        if repair:
            print(f"  resilience: tree repaired {repair['repairs']}x "
                  f"(layout epoch {repair['epoch']})")

    if args.json:
        payload = {
            "study_id": result.study_id,
            "leader": result.leader_id,
            "members": result.num_members,
            "l_des": result.l_des,
            "l_prime": result.l_prime,
            "l_double_prime": result.l_double_prime,
            "l_safe": result.l_safe,
            "release_power": result.release_power,
            "timings_ms": result.timings.as_milliseconds(),
            "network_bytes": result.network_bytes,
        }
        if result.collusion is not None:
            payload["collusion"] = {
                "baseline_safe": list(result.collusion.baseline_safe),
                "vulnerable": list(
                    result.collusion.vulnerable_snps(tuple(result.l_safe))
                ),
                "combinations": result.collusion.combinations_evaluated,
            }
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
        print(f"  result written to {args.json}")

    if result.observability is not None:
        if args.trace:
            count = write_jsonl(result.observability.spans, args.trace)
            print(f"  trace written to {args.trace} ({count} spans)")
        if args.report:
            result.observability.save(args.report)
            print(f"  run report written to {args.report}")
    return 0


def _study_config(args: argparse.Namespace, cohort: Cohort, study_id: str) -> StudyConfig:
    thresholds = PrivacyThresholds(
        maf_cutoff=args.maf_cutoff,
        ld_cutoff=args.ld_cutoff,
        false_positive_rate=args.alpha,
        power_threshold=args.beta,
    )
    return StudyConfig(
        snp_count=cohort.num_snps,
        thresholds=thresholds,
        collusion=_collusion_policy(args.collusion, args.members),
        sharding=ShardingConfig.over(getattr(args, "shards", 1)),
        seed=args.seed,
        study_id=study_id,
    )


def _service_config(args: argparse.Namespace) -> ServiceConfig:
    return ServiceConfig(
        num_members=args.members,
        pool_size=args.pool_size,
        max_active=args.max_active,
        queue_limit=args.queue_limit,
        max_concurrent_rounds=args.max_rounds,
        enclave_memory_budget_bytes=args.memory_budget,
        seed=args.seed,
    )


def _cmd_serve(args: argparse.Namespace) -> int:
    cohort = load_cohort_bundle(args.cohort)
    outcomes = {}
    with FederationService(_service_config(args)) as service:
        submitted = []
        for index in range(args.studies):
            config = _study_config(
                args, cohort, f"{args.study_prefix}-{index}"
            )
            while True:
                try:
                    submitted.append(service.submit(cohort, config))
                    break
                except ServiceOverloadedError:
                    # Backpressure: wait for the queue to drain a bit.
                    time.sleep(0.05)
        for study_id in submitted:
            try:
                result = service.result(study_id, timeout=args.timeout)
            except ReproError as exc:
                status = service.status(study_id)
                status["error_message"] = str(exc)
                outcomes[study_id] = status
                continue
            status = service.status(study_id)
            status.update(
                l_safe=result.l_safe,
                release_power=result.release_power,
                leader=result.leader_id,
            )
            outcomes[study_id] = status
        metrics = service.metrics()

    done = sum(1 for o in outcomes.values() if o["status"] == "done")
    print(
        f"served {len(outcomes)} studies ({done} done) over "
        f"{int(metrics['pool_slots'])} warm slots: "
        f"{int(metrics['warm_hits'])} warm hits / "
        f"{int(metrics['cold_provisions'])} cold provisions, "
        f"{int(metrics['rounds_admitted'])} rounds scheduled"
    )
    for study_id, outcome in outcomes.items():
        line = (
            f"  {study_id:<20s} {outcome['status']:<10s} "
            f"wait {outcome['wait_seconds'] * 1000:8.1f} ms  "
            f"run {outcome['run_seconds'] * 1000:8.1f} ms"
        )
        if "l_safe" in outcome:
            line += (
                f"  |L_safe|={len(outcome['l_safe'])} "
                f"power={outcome['release_power']:.3f}"
            )
        print(line)
    if args.metrics:
        with open(args.metrics, "w", encoding="utf-8") as handle:
            json.dump(metrics, handle, indent=2, default=str)
        print(f"  scheduler metrics written to {args.metrics}")
    if args.results:
        with open(args.results, "w", encoding="utf-8") as handle:
            json.dump(outcomes, handle, indent=2, default=str)
        print(f"  per-study results written to {args.results}")
    return 0 if done == len(outcomes) else 1


def _cmd_submit(args: argparse.Namespace) -> int:
    cohort = load_cohort_bundle(args.cohort)
    config = _study_config(args, cohort, args.study_id)
    service_config = ServiceConfig(
        num_members=args.members, pool_size=1, max_active=1, seed=args.seed
    )
    with FederationService(service_config) as service:
        study_id = service.submit(cohort, config)
        result = service.result(study_id, timeout=args.timeout)
        status = service.status(study_id)
    print(result.summary())
    print(
        f"  service: slot {status['slot']} "
        f"({'warm' if status['warm'] else 'cold'}), "
        f"{status['rounds']} gated rounds, "
        f"run {status['run_seconds'] * 1000:.1f} ms"
    )
    if args.report and result.observability is not None:
        result.observability.save(args.report)
        print(f"  per-request run report written to {args.report}")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    report = RunReport.load(args.report)
    print(report.render())
    if args.chrome:
        write_chrome_trace(report.spans, args.chrome)
        print(f"\nchrome trace written to {args.chrome} "
              "(load via about://tracing or ui.perfetto.dev)")
    return 0


def _cmd_attack(args: argparse.Namespace) -> int:
    cohort = load_cohort_bundle(args.cohort)
    if args.release:
        with open(args.release, encoding="utf-8") as handle:
            snps = json.load(handle)["l_safe"]
    elif args.snps:
        snps = [int(s) for s in args.snps.split(",")]
    else:
        snps = list(range(cohort.num_snps))
    evaluation = evaluate_attack(cohort, snps, alpha=args.alpha)
    print(f"LR membership attack over {len(snps)} SNPs "
          f"(alpha={args.alpha}):")
    print(f"  power:               {evaluation.power:.3f}")
    print(f"  false-positive rate: {evaluation.false_positive_rate:.3f}")
    print(f"  advantage:           {evaluation.advantage:.3f}")
    return 0


def _cmd_info(args: argparse.Namespace) -> int:
    cohort = load_cohort_bundle(args.cohort)
    print(cohort.describe())
    # This used to echo the case panel's raw min/median/max MAF.  Raw
    # per-cohort allele frequencies are exactly what the LR membership
    # attack consumes (R6 flagged the flow source->stdout), so the
    # summary now sticks to dimensions; DP-protected statistics come
    # from running the protocol.
    print("case minor-allele frequency: withheld "
          "(raw MAFs enable membership inference; use 'run' for "
          "DP-protected statistics)")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="GenDPR: distributed assessment of privacy-preserving "
        "GWAS releases (Middleware '22 reproduction)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    generate = subparsers.add_parser(
        "generate", help="generate a synthetic cohort bundle"
    )
    generate.add_argument("--snps", type=int, default=1000)
    generate.add_argument("--case", type=int, default=1500)
    generate.add_argument("--control", type=int, default=1300)
    generate.add_argument("--sites", type=int, default=1)
    generate.add_argument("--site-effect", type=float, default=0.0)
    generate.add_argument("--drift", type=float, default=0.085)
    generate.add_argument("--seed", type=int, default=0)
    generate.add_argument("--out", required=True)
    generate.set_defaults(func=_cmd_generate)

    run = subparsers.add_parser("run", help="run a GenDPR study")
    run.add_argument("--cohort", required=True)
    run.add_argument("--members", type=int, default=3)
    run.add_argument(
        "--collusion",
        help="comma-separated f values, or 'conservative' for f=1..G-1",
    )
    run.add_argument("--maf-cutoff", type=float, default=0.05)
    run.add_argument("--ld-cutoff", type=float, default=1e-5)
    run.add_argument("--alpha", type=float, default=0.1)
    run.add_argument("--beta", type=float, default=0.9)
    run.add_argument("--seed", type=int, default=0)
    run.add_argument(
        "--shards",
        type=int,
        default=1,
        help="split the SNP axis into this many ranges aggregated over "
        "the combine tree (docs/PERFORMANCE.md); 1 disables sharding",
    )
    run.add_argument("--study-id", default="cli-study")
    run.add_argument("--json", help="write the result as JSON to this path")
    run.add_argument(
        "--trace", help="record spans and write a JSONL trace to this path"
    )
    run.add_argument(
        "--report",
        help="write the machine-readable RunReport JSON to this path",
    )
    run.add_argument(
        "--integrity",
        action="store_true",
        help="enable Byzantine-integrity checks: broadcast-consistency "
        "echo, channel-transcript cross-checks and checkpoint freshness "
        "(docs/RESILIENCE.md)",
    )
    run.add_argument(
        "--supervised",
        action="store_true",
        help="run under the protocol supervisor: checkpoints, leader "
        "failover and (sharded) tree repair (docs/RESILIENCE.md)",
    )
    run.add_argument(
        "--chaos-seed",
        type=int,
        help="arm the seeded drop/duplicate/delay/corrupt fault plan "
        "with this seed; implies --supervised",
    )
    run.add_argument(
        "--chaos-intensity",
        type=float,
        default=0.15,
        help="total fault probability per sent envelope for --chaos-seed",
    )
    run.set_defaults(func=_cmd_run)

    def add_study_options(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("--cohort", required=True)
        sub.add_argument("--members", type=int, default=3)
        sub.add_argument(
            "--collusion",
            help="comma-separated f values, or 'conservative' for f=1..G-1",
        )
        sub.add_argument("--maf-cutoff", type=float, default=0.05)
        sub.add_argument("--ld-cutoff", type=float, default=1e-5)
        sub.add_argument("--alpha", type=float, default=0.1)
        sub.add_argument("--beta", type=float, default=0.9)
        sub.add_argument("--seed", type=int, default=0)
        sub.add_argument(
            "--shards",
            type=int,
            default=1,
            help="split the SNP axis into this many ranges aggregated "
            "over the combine tree; 1 disables sharding",
        )
        sub.add_argument(
            "--timeout",
            type=float,
            default=600.0,
            help="seconds to wait for each study's result",
        )

    serve = subparsers.add_parser(
        "serve",
        help="run studies through the long-lived federation service "
        "(docs/SERVICE.md)",
    )
    add_study_options(serve)
    serve.add_argument(
        "--studies", type=int, default=8,
        help="number of studies to submit",
    )
    serve.add_argument("--study-prefix", default="serve")
    serve.add_argument(
        "--pool-size", type=int, default=2, help="warm substrates to keep"
    )
    serve.add_argument(
        "--max-active", type=int, default=2,
        help="studies executing concurrently",
    )
    serve.add_argument(
        "--queue-limit", type=int, default=8,
        help="submissions allowed to wait before rejection",
    )
    serve.add_argument(
        "--max-rounds", type=int, default=2,
        help="protocol rounds in flight across all sessions",
    )
    serve.add_argument(
        "--memory-budget", type=int, default=0,
        help="pool-wide trusted-memory admission ceiling in bytes "
        "(0 disables)",
    )
    serve.add_argument(
        "--metrics", help="write scheduler/queue/pool metrics JSON here"
    )
    serve.add_argument(
        "--results", help="write per-study outcome JSON here"
    )
    serve.set_defaults(func=_cmd_serve)

    submit = subparsers.add_parser(
        "submit",
        help="submit one study through the service request path",
    )
    add_study_options(submit)
    submit.add_argument("--study-id", default="submitted-study")
    submit.add_argument(
        "--report",
        help="write the per-request RunReport JSON to this path",
    )
    submit.set_defaults(func=_cmd_submit)

    report = subparsers.add_parser(
        "report", help="pretty-print a RunReport written by 'run --report'"
    )
    report.add_argument("report", help="RunReport JSON path")
    report.add_argument(
        "--chrome", help="also convert the spans to Chrome trace JSON here"
    )
    report.set_defaults(func=_cmd_report)

    attack = subparsers.add_parser(
        "attack", help="evaluate the LR membership attack on a SNP set"
    )
    attack.add_argument("--cohort", required=True)
    attack.add_argument("--snps", help="comma-separated SNP indices")
    attack.add_argument(
        "--release", help="JSON result file from 'repro run --json'"
    )
    attack.add_argument("--alpha", type=float, default=0.1)
    attack.set_defaults(func=_cmd_attack)

    info = subparsers.add_parser("info", help="describe a cohort bundle")
    info.add_argument("--cohort", required=True)
    info.set_defaults(func=_cmd_info)

    lint = subparsers.add_parser(
        "lint",
        help="run the domain-aware static analyser "
        "(docs/STATIC_ANALYSIS.md)",
    )
    configure_lint_parser(lint)

    fuzz = subparsers.add_parser(
        "fuzz",
        help="coverage-guided chaos fuzzing over fault plans "
        "(docs/FUZZING.md)",
    )
    configure_fuzz_parser(fuzz)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        failure = getattr(exc, "report", None)
        if failure is not None and hasattr(failure, "to_dict"):
            # Classified aborts carry a FailureReport; surface it as
            # JSON so operators (and CI) can triage without a debugger.
            print(
                json.dumps(failure.to_dict(), indent=2, default=str),
                file=sys.stderr,
            )
        return 1
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except BrokenPipeError:
        # Downstream consumer (e.g. ``head``) closed stdout early.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0


if __name__ == "__main__":
    sys.exit(main())
