"""SNP metadata and panels.

A GWAS is defined over an ordered panel of SNP positions (the paper's
``L_des``).  :class:`SnpInfo` carries the per-variant metadata a real
study would read from a VCF header; :class:`SnpPanel` is the ordered
collection the protocol indexes into.  Throughout the protocol SNPs are
referred to by their *panel index*, exactly like the paper's ``l`` in
``{0, ..., L}``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List, Sequence, Tuple

from ..errors import GenomicsError


@dataclass(frozen=True)
class SnpInfo:
    """Metadata of one single-nucleotide polymorphism."""

    snp_id: str
    chromosome: int
    position: int
    major_allele: str = "A"
    minor_allele: str = "G"

    def __post_init__(self) -> None:
        if not self.snp_id:
            raise GenomicsError("snp_id must be non-empty")
        if self.chromosome < 1:
            raise GenomicsError("chromosome must be >= 1")
        if self.position < 0:
            raise GenomicsError("position must be non-negative")
        if self.major_allele == self.minor_allele:
            raise GenomicsError("major and minor allele must differ")


class SnpPanel:
    """An ordered, duplicate-free collection of SNPs."""

    def __init__(self, snps: Sequence[SnpInfo]):
        ids = [snp.snp_id for snp in snps]
        if len(set(ids)) != len(ids):
            raise GenomicsError("panel contains duplicate SNP ids")
        self._snps: Tuple[SnpInfo, ...] = tuple(snps)
        self._index = {snp.snp_id: i for i, snp in enumerate(self._snps)}

    def __len__(self) -> int:
        return len(self._snps)

    def __iter__(self) -> Iterator[SnpInfo]:
        return iter(self._snps)

    def __getitem__(self, index: int) -> SnpInfo:
        return self._snps[index]

    def index_of(self, snp_id: str) -> int:
        try:
            return self._index[snp_id]
        except KeyError:
            raise GenomicsError(f"unknown SNP id {snp_id!r}") from None

    def ids(self) -> List[str]:
        return [snp.snp_id for snp in self._snps]

    def subset(self, indices: Iterable[int]) -> "SnpPanel":
        """A new panel containing only the SNPs at ``indices`` (in order)."""
        selected = []
        for index in indices:
            if not 0 <= index < len(self._snps):
                raise GenomicsError(f"SNP index {index} out of range")
            selected.append(self._snps[index])
        return SnpPanel(selected)

    @classmethod
    def synthetic(cls, count: int, chromosome: int = 1) -> "SnpPanel":
        """A panel of ``count`` evenly spaced synthetic SNPs."""
        if count <= 0:
            raise GenomicsError("panel size must be positive")
        return cls(
            [
                SnpInfo(
                    snp_id=f"rs{chromosome:02d}_{i:06d}",
                    chromosome=chromosome,
                    position=1_000 + 500 * i,
                )
                for i in range(count)
            ]
        )
