"""Render experiment rows in the paper's table/figure formats.

Pure text rendering: every function takes the row dicts produced by
:mod:`repro.bench.runner` and returns a string laid out like the
corresponding artifact of the paper, so EXPERIMENTS.md can place the
reproduction next to the original numbers.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from ..core.timing import ALL_LABELS


def render_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Monospace-align a generic table."""
    cells = [[str(h) for h in headers]] + [
        [str(value) for value in row] for row in rows
    ]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    for line_number, row in enumerate(cells):
        lines.append(
            "  ".join(value.ljust(widths[i]) for i, value in enumerate(row)).rstrip()
        )
        if line_number == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def _fmt_ms(value: object) -> str:
    return f"{float(value):,.1f}"


def render_resource_table(rows: List[Dict[str, object]]) -> str:
    """Table 3: average resource utilisation per configuration.

    The "Member" columns average over non-leader GDO enclaves — the
    paper's "federation members' TEE" figure; the leader enclave, which
    aggregates and runs the LR-test search, is shown separately.
    """
    body = [
        [
            f"{row['gdos']} GDOs / {row['snps']:,} SNPs",
            f"{100.0 * float(row['member_cpu_utilization']):.1f}%",
            f"{float(row['member_peak_memory_kib']):,.0f} KB",
            f"{float(row['leader_peak_memory_kib']):,.0f} KB",
            f"{int(row['network_bytes']):,}",
            f"{int(row['network_messages']):,}",
        ]
        for row in rows
    ]
    return "Table 3: GenDPR's average resource utilization.\n" + render_table(
        [
            "Configuration",
            "Member CPU",
            "Member memory",
            "Leader memory",
            "Net bytes",
            "Messages",
        ],
        body,
    )


def render_runtime_figure(rows: List[Dict[str, object]], caption: str) -> str:
    """Figures 5/6: per-task running time per deployment."""
    headers = ["Deployment"] + list(ALL_LABELS) + ["Total (ms)"]
    body = []
    for row in rows:
        name = (
            "Centralized"
            if row["system"] == "Centralized"
            else f"{row['gdos']} GDOs"
        )
        body.append(
            [name]
            + [_fmt_ms(row[label]) for label in ALL_LABELS]
            + [_fmt_ms(row["total_ms"])]
        )
    return f"{caption}\n" + render_table(headers, body)


def render_selection_table(rows: List[Dict[str, object]]) -> str:
    """Table 4: retained SNPs per phase for the three systems."""
    grouped: Dict[tuple, Dict[str, Dict[str, object]]] = {}
    for row in rows:
        key = (row["genomes"], row["snps"])
        grouped.setdefault(key, {})[str(row["system"])] = row

    def counts(row: Dict[str, object] | None) -> str:
        if row is None:
            return "-"
        return f"MAF {row['maf']:,} / LD {row['ld']:,} / LR {row['lr']:,}"

    body = []
    for (genomes, snps), systems in sorted(grouped.items()):
        body.append(
            [
                f"{genomes:,} / {snps:,}",
                counts(systems.get("Centralized")),
                counts(systems.get("GenDPR")),
                counts(systems.get("Naive distributed")),
            ]
        )
    return (
        "Table 4: SNPs retained after each verification phase.\n"
        + render_table(
            ["# genomes / SNPs", "Centralized", "GenDPR", "Naive distributed"],
            body,
        )
    )


def render_collusion_table(rows: List[Dict[str, object]]) -> str:
    """Table 5: collusion-tolerant GenDPR outcomes."""
    body = [
        [
            str(row["setting"]),
            f"{row['safe_with_tolerance']} ({float(row['safe_pct']):.1f}%)",
            f"{row['vulnerable']} ({float(row['vulnerable_pct']):.1f}%)",
            _fmt_ms(row["total_ms"]),
            str(row["combinations"]),
        ]
        for row in rows
    ]
    return (
        "Table 5: collusion-tolerant GenDPR.\n"
        + render_table(
            [
                "Settings",
                "# safe released SNPs",
                "# vulnerable SNPs",
                "Running time (ms)",
                "Combinations",
            ],
            body,
        )
    )
