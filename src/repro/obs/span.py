"""Spans and span collectors — the tracing core's data plane.

A :class:`Span` is one named, timed interval of a run: a protocol
phase, a request/response round, an ECALL, or a point event (a network
send, a trusted-memory registration).  Spans form a tree via
``parent_id``; the taxonomy used by the instrumentation is documented
in ``docs/OBSERVABILITY.md`` (study → phase → round → ecall → message).

Collectors receive *completed* spans.  Two implementations exist:

* :class:`SpanCollector` — a thread-safe in-memory sink with an
  optional span cap (the cap drops, it never blocks).
* :class:`NullCollector` — the disabled-tracing sink.  It is a
  stateless singleton (``__slots__ = ()``: it *cannot* accumulate
  anything), so the cost of instrumentation in a non-traced run is one
  attribute lookup per event and zero allocations.
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..errors import ConfigError


@dataclass
class Span:
    """One completed (or point) interval of a traced run.

    Timestamps are ``time.perf_counter_ns()`` values: monotonic,
    comparable within one process, meaningless across processes.
    Point events are spans with ``duration_ns == 0``.
    """

    name: str
    span_id: int
    parent_id: Optional[int]
    start_ns: int
    duration_ns: int = 0
    attributes: Dict[str, object] = field(default_factory=dict)

    @property
    def end_ns(self) -> int:
        return self.start_ns + self.duration_ns

    @property
    def duration_seconds(self) -> float:
        return self.duration_ns / 1e9

    @property
    def is_event(self) -> bool:
        """True for point events (zero-duration spans)."""
        return self.duration_ns == 0


class NullCollector:
    """The disabled-tracing sink: accepts everything, keeps nothing.

    ``__slots__ = ()`` makes statelessness structural — there is no
    ``__dict__`` to grow, so a run with tracing disabled provably
    allocates nothing in the collector (the guard test in
    ``tests/test_obs.py`` relies on this).
    """

    __slots__ = ()

    def next_id(self) -> int:
        return 0

    def add(self, span: Span) -> None:
        pass

    def spans(self) -> Tuple[Span, ...]:
        return ()

    def __len__(self) -> int:
        return 0


#: Process-wide singleton used whenever tracing is off.
NULL_SINK = NullCollector()


class SpanCollector:
    """Thread-safe in-memory span sink.

    Args:
        max_spans: optional hard cap; spans beyond it are counted in
            :attr:`dropped` instead of stored, bounding memory on
            long runs.
    """

    def __init__(self, max_spans: Optional[int] = None):
        if max_spans is not None and max_spans <= 0:
            raise ConfigError("max_spans must be positive")
        self.max_spans = max_spans
        self._lock = threading.Lock()
        self._spans: List[Span] = []
        self._ids = itertools.count(1)
        self._dropped = 0

    def next_id(self) -> int:
        """A fresh span id (unique within this collector)."""
        return next(self._ids)

    def add(self, span: Span) -> None:
        with self._lock:
            if self.max_spans is not None and len(self._spans) >= self.max_spans:
                self._dropped += 1
            else:
                self._spans.append(span)

    def spans(self) -> List[Span]:
        """Snapshot of collected spans, in completion order."""
        with self._lock:
            return list(self._spans)

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()
            self._dropped = 0

    @property
    def dropped(self) -> int:
        """Spans discarded because of ``max_spans``."""
        with self._lock:
            return self._dropped

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)
