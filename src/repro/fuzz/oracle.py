"""The decision oracle: one invariant, one implementation.

The paper's robustness claim — a federated assessment under crashes,
collusion and active adversaries either completes with release
decisions **bit-identical** to the fault-free reference or aborts with
a *classified* :class:`~repro.errors.ReproError` — used to be asserted
by three near-copies of the same harness (the crash chaos tier, the
Byzantine tier and the shard-resilience tier).  This module is the
single implementation: the fuzzer and the chaos tiers all execute the
same invariant code path, so a fuzz-discovered violation is exactly a
chaos-tier failure and vice versa.

:class:`DecisionOracle` owns the cohort, the fault-free references per
(execution mode, collusion) cell and the comparison/classification
logic; :meth:`DecisionOracle.execute` runs one configured study and
returns an :class:`OracleRun` with the verdict, the telemetry the
tiers assert over, and the behaviour-counter units the fuzzer keys its
corpus on (bridged through :mod:`repro.obs.metrics`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Optional, Tuple

from ..config import (
    CollusionPolicy,
    ExecutionConfig,
    StudyConfig,
)
from ..core.federation import Federation, build_federation
from ..core.leader import elect_leader
from ..core.protocol import GenDPRProtocol
from ..errors import ReproError
from ..genomics import SyntheticSpec, generate_cohort, partition_cohort
from ..obs.bridge import metric_slug, record_faults, record_integrity
from ..obs.metrics import MetricsRegistry
from .coverage import Behaviour, CoverageCollector
from .genome import PlanGenome, genome_config

#: Default fuzz-study shape: small enough for ~30 ms runs, big enough
#: that every phase (MAF, LD windows, LR, collusion) does real work.
DEFAULT_SNP_COUNT = 40
DEFAULT_NUM_CASE = 60
DEFAULT_NUM_CONTROL = 50
DEFAULT_MEMBERS = 3
DEFAULT_STUDY_SEED = 5
DEFAULT_COHORT_SEED = 5


@dataclass
class OracleRun:
    """Outcome of one plan execution, as judged by the oracle.

    ``violation`` is ``None`` for a healthy run (bit-identical
    completion or classified abort) and a short reason string when the
    invariant broke — the thing the fuzzer shrinks and the chaos tiers
    fail on.
    """

    verdict: str  # "completed" | "classified_abort"
    error: Optional[str]
    error_message: Optional[str]
    violation: Optional[str]
    injected: Dict[str, int]
    integrity_counters: Dict[str, int]
    shard_repair: Dict[str, int]
    failovers: int
    member_restorations: int
    federation: Federation = field(repr=False)
    result: Optional[object] = field(repr=False, default=None)

    def behaviour_counters(self) -> FrozenSet[str]:
        """The fired-counter half of the behaviour key.

        Counter names come from the same :mod:`repro.obs.bridge`
        functions that feed RunReports, so the fuzzer's coverage map
        speaks the ``faults.*`` / ``integrity.*`` / ``shard.repair.*``
        vocabulary of every other artifact; the run outcome and any
        supervisor failovers are folded in as pseudo-counters.
        """
        registry = MetricsRegistry()
        record_faults(registry, self.injected)
        if any(self.integrity_counters.values()):
            record_integrity(registry, self.integrity_counters)
        for name, value in sorted(self.shard_repair.items()):
            if name == "epoch" or not value:
                continue
            registry.counter(f"shard.repair.{metric_slug(name)}").inc(
                int(value)
            )
        fired = {
            name
            for name, value in registry.as_dict()["counters"].items()
            if value
        }
        if self.verdict == "completed":
            fired.add("outcome.completed")
        else:
            fired.add(f"outcome.abort.{self.error}")
        if self.failovers:
            fired.add("supervisor.failovers")
        if self.member_restorations:
            fired.add("supervisor.member_restorations")
        return frozenset(fired)

    def record(self, **extra: object) -> Dict[str, object]:
        """A chaos-report record for this run (plan + digest + outcome).

        The plan digest makes every record traceable to its corpus
        entry; the chaos tiers merge ``extra`` fields like seed, mode
        and shard count on top.
        """
        plan = self.federation.fault_injector.plan
        record: Dict[str, object] = {
            "plan": plan.describe(),
            "plan_digest": plan.digest(),
            "outcome": self.verdict,
            "injected": dict(self.injected),
        }
        if self.error is not None:
            record["error"] = self.error
        if self.violation is not None:
            record["violation"] = self.violation
        record.update(extra)
        return record


class DecisionOracle:
    """Runs configured studies and judges them against fault-free twins."""

    def __init__(
        self,
        *,
        cohort=None,
        members: int = DEFAULT_MEMBERS,
        snp_count: int = DEFAULT_SNP_COUNT,
        study_id: str = "fuzz-oracle",
        study_seed: int = DEFAULT_STUDY_SEED,
    ):
        if cohort is None:
            cohort, _ = generate_cohort(
                SyntheticSpec(
                    num_snps=snp_count,
                    num_case=DEFAULT_NUM_CASE,
                    num_control=DEFAULT_NUM_CONTROL,
                    seed=DEFAULT_COHORT_SEED,
                )
            )
        self.cohort = cohort
        self.members = members
        self.snp_count = cohort.num_snps
        self.study_id = study_id
        self.study_seed = study_seed
        self._references: Dict[Tuple[str, int], object] = {}

    # -- federation shape -----------------------------------------------------

    @property
    def member_ids(self) -> Tuple[str, ...]:
        return tuple(f"gdo-{i}" for i in range(self.members))

    @property
    def leader_id(self) -> str:
        return elect_leader(
            list(self.member_ids), self.study_seed, self.study_id
        )

    def follower_ids(self) -> Tuple[str, ...]:
        leader = self.leader_id
        return tuple(m for m in self.member_ids if m != leader)

    # -- references -----------------------------------------------------------

    def reference(self, mode: str, f: int):
        """The fault-free reference of one (mode, collusion) cell.

        Computed with faults, resilience *and* integrity disabled, so
        every faulted run simultaneously validates that the defensive
        machinery changes no release decision.
        """
        key = (mode, f)
        if key not in self._references:
            config = StudyConfig(
                snp_count=self.snp_count,
                study_id=self.study_id,
                seed=self.study_seed,
                execution=ExecutionConfig(mode=mode),
                collusion=(
                    CollusionPolicy.static(f) if f else CollusionPolicy.none()
                ),
            )
            federation = self._build(config)
            self._references[key] = GenDPRProtocol(federation).run()
        return self._references[key]

    def _build(self, config: StudyConfig) -> Federation:
        return build_federation(
            config,
            partition_cohort(self.cohort, self.members),
            self.cohort,
        )

    # -- the invariant --------------------------------------------------------

    def execute(
        self,
        config: StudyConfig,
        *,
        collector: Optional[CoverageCollector] = None,
    ) -> OracleRun:
        """Run one configured study and judge it.

        The verdict contract is the chaos tiers' invariant: either the
        run completes with decisions bit-identical to the fault-free
        reference of its (mode, collusion) cell, or it aborts with a
        classified :class:`~repro.errors.ReproError`.  Anything else —
        divergent decisions, an unclassified exception — is a
        *violation*.  When ``collector`` is given, arcs of the
        detection modules are recorded around the protocol run.
        """
        reference = self.reference(
            config.execution.mode, max(config.collusion.f_values, default=0)
        )
        federation = self._build(config)
        protocol = GenDPRProtocol(federation)
        result = None
        error = None
        error_message = None
        violation = None
        try:
            if collector is not None and collector.enabled:
                collector.reset()
                with collector:
                    result = protocol.run()
            else:
                result = protocol.run()
        except ReproError as exc:
            error = type(exc).__name__
            error_message = str(exc)
        except Exception as exc:  # noqa: BLE001 - the point of the oracle
            error = type(exc).__name__
            error_message = str(exc)
            violation = f"unclassified_error:{error}"
        if result is not None:
            violation = self._compare(result, reference)
        verdict = "completed" if result is not None else "classified_abort"
        injector = federation.fault_injector
        return OracleRun(
            verdict=verdict,
            error=error,
            error_message=error_message,
            violation=violation,
            injected=injector.counters() if injector is not None else {},
            integrity_counters=federation.integrity_monitor.counters(),
            shard_repair=protocol.shard_repair_accounting(),
            failovers=federation.failovers,
            member_restorations=federation.member_restorations,
            federation=federation,
            result=result,
        )

    def _compare(self, result, reference) -> Optional[str]:
        """Bit-identical decision check; a reason string on divergence."""
        if result.l_prime != reference.l_prime:
            return "divergent_decisions:l_prime"
        if result.l_double_prime != reference.l_double_prime:
            return "divergent_decisions:l_double_prime"
        if result.l_safe != reference.l_safe:
            return "divergent_decisions:l_safe"
        if reference.collusion is not None:
            if result.collusion is None:
                return "divergent_decisions:collusion_missing"
            if (
                result.collusion.baseline_safe
                != reference.collusion.baseline_safe
            ):
                return "divergent_decisions:collusion_baseline"
        return None

    # -- genome front door ----------------------------------------------------

    def execute_genome(
        self,
        genome: PlanGenome,
        *,
        collector: Optional[CoverageCollector] = None,
    ) -> Tuple[OracleRun, Behaviour]:
        """Run a genome and key its behaviour (counters × arcs)."""
        config = genome_config(
            genome,
            snp_count=self.snp_count,
            study_id=self.study_id,
            study_seed=self.study_seed,
        )
        run = self.execute(config, collector=collector)
        arcs = (
            collector.arcs()
            if collector is not None and collector.enabled
            else frozenset()
        )
        return run, Behaviour(counters=run.behaviour_counters(), arcs=arcs)
