"""Differential-privacy mechanisms for the hybrid release.

Section 5.5 sketches an extension: release the SNPs in ``L_safe``
noise-free and the *complement* ``L_des \\ L_safe`` with DP
perturbation, so every desired SNP position gets some statistic out.

This module provides the Laplace machinery for that hybrid: allele
counts have L1 sensitivity 1 (one individual's participation changes a
minor-allele count by at most one), so counts are released through
``Laplace(1/epsilon)`` noise and downstream statistics (frequencies,
chi-squared) are recomputed from the noisy counts — the standard
post-processing-safe construction.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigError

#: Changing one individual's genotype vector changes each per-SNP count
#: by at most one.
COUNT_SENSITIVITY = 1.0


@dataclass(frozen=True)
class LaplaceMechanism:
    """Laplace noise calibrated to a per-query epsilon."""

    epsilon: float
    sensitivity: float = COUNT_SENSITIVITY
    seed: int = 0

    def __post_init__(self) -> None:
        if self.epsilon <= 0:
            raise ConfigError("epsilon must be positive")
        if self.sensitivity <= 0:
            raise ConfigError("sensitivity must be positive")

    @property
    def scale(self) -> float:
        return self.sensitivity / self.epsilon

    def perturb(self, values: np.ndarray) -> np.ndarray:
        """Add i.i.d. Laplace noise to ``values`` (deterministic in seed)."""
        rng = np.random.Generator(np.random.PCG64(self.seed))
        array = np.asarray(values, dtype=np.float64)
        return array + rng.laplace(0.0, self.scale, size=array.shape)

    def perturb_counts(self, counts: np.ndarray, upper: int) -> np.ndarray:
        """Noise counts and clamp into the valid ``[0, upper]`` range.

        Clamping is post-processing and preserves the DP guarantee.
        """
        if upper <= 0:
            raise ConfigError("count upper bound must be positive")
        return np.clip(self.perturb(counts), 0.0, float(upper))


def epsilon_for_frequency_error(
    target_error: float, num_individuals: int, confidence: float = 0.95
) -> float:
    """Epsilon needed so the frequency error stays below ``target_error``.

    Inverts P(|Laplace(1/(eps*N))| > t) = exp(-eps*N*t) <= 1-confidence,
    the utility planning rule a study designer would use before opting
    into the hybrid release.
    """
    if not 0 < target_error < 1:
        raise ConfigError("target_error must be in (0, 1)")
    if not 0 < confidence < 1:
        raise ConfigError("confidence must be in (0, 1)")
    if num_individuals <= 0:
        raise ConfigError("num_individuals must be positive")
    return float(-np.log(1.0 - confidence) / (target_error * num_individuals))
