"""Structured mutation over plan genomes.

Unlike a byte-level fuzzer, the mutator understands the genome's
shape: every operator is *typed* (perturb a rate, splice two plans,
add/remove a fault feature, retarget a link, shift a crash index, flip
a run axis, reseed the plan) and always yields a valid genome because
:func:`~repro.fuzz.genome.normalize` runs after every application.

Determinism is load-bearing: all choices draw from one
:class:`~repro.crypto.rng.DeterministicRng` stream seeded at
construction, and every drawn value (including rates) comes from fixed
palettes — so the same (seed, input-genome sequence) produces a
byte-identical mutated-genome sequence on every platform, which is
what makes a fuzz run replayable from its seed alone.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional, Sequence, Tuple

from ..crypto.rng import DeterministicRng
from ..errors import ConfigError
from .genome import (
    ENVELOPE_RATE_FIELDS,
    MODES,
    RATE_FIELDS,
    PlanGenome,
    normalize,
)

#: Rates are drawn from a fixed palette (no float arithmetic drift).
RATE_PALETTE: Tuple[float, ...] = (
    0.0,
    0.01,
    0.02,
    0.05,
    0.08,
    0.12,
    0.2,
    0.35,
)

#: Checkpoint-tamper modes the mutator may arm.
TAMPER_MODES: Tuple[str, ...] = ("", "stale", "stale_persistent", "corrupt")

#: Shard-count palette (1 disables sharding).
SHARD_PALETTE: Tuple[int, ...] = (1, 2, 4)

#: The operator names, in the fixed order the dispatcher draws over.
OPERATORS: Tuple[str, ...] = (
    "perturb_rate",
    "add_fault",
    "remove_fault",
    "retarget_link",
    "shift_crash_index",
    "shift_partition",
    "reseed_plan",
    "flip_axis",
    "splice_plans",
)


class PlanMutator:
    """Applies one typed mutation per :meth:`mutate` call."""

    def __init__(
        self,
        *,
        seed: int,
        members: Sequence[str],
        leader: str,
        max_crash_index: int = 14,
        max_partition_round: int = 8,
    ):
        self.seed = seed
        self.members = tuple(members)
        self.leader = leader
        self.max_crash_index = max_crash_index
        self.max_partition_round = max_partition_round
        self._rng = DeterministicRng(f"repro.fuzz.mutator#{seed}")

    # -- draw helpers ---------------------------------------------------------

    def _choice(self, options: Sequence):
        return options[self._rng.randbelow(len(options))]

    def _rate(self) -> float:
        return self._choice(RATE_PALETTE)

    def _member(self) -> str:
        return self._choice(self.members)

    def _follower(self) -> str:
        followers = tuple(m for m in self.members if m != self.leader)
        return self._choice(followers or self.members)

    # -- typed operators ------------------------------------------------------

    def _op_perturb_rate(self, genome: PlanGenome) -> PlanGenome:
        field_name = self._choice(RATE_FIELDS)
        return replace(
            genome, faults=replace(genome.faults, **{field_name: self._rate()})
        )

    def _op_add_fault(self, genome: PlanGenome) -> PlanGenome:
        feature = self._choice(
            ("rate", "crash", "partition", "tamper", "equivocate", "shard_flip")
        )
        faults = genome.faults
        if feature == "rate":
            field_name = self._choice(ENVELOPE_RATE_FIELDS)
            palette = tuple(r for r in RATE_PALETTE if r > 0.0)
            faults = replace(faults, **{field_name: self._choice(palette)})
        elif feature == "crash":
            point = (
                self._choice((self.leader, self._member())),
                1 + self._rng.randbelow(self.max_crash_index),
            )
            faults = replace(
                faults, crash_points=faults.crash_points + (point,)
            )
        elif feature == "partition":
            window = (
                self._member(),
                1 + self._rng.randbelow(self.max_partition_round),
                1 + self._rng.randbelow(3),
            )
            faults = replace(
                faults, partition_windows=faults.partition_windows + (window,)
            )
        elif feature == "tamper":
            mode = self._choice(TAMPER_MODES[1:])
            # Tampered restores only surface at a failover, so arming a
            # tamper also plants one leader crash (the Byzantine tier
            # pairs them the same way).
            crash_points = faults.crash_points
            if not any(p[0] == self.leader for p in crash_points):
                crash_points = crash_points + (
                    (self.leader, 1 + self._rng.randbelow(self.max_crash_index)),
                )
            faults = replace(
                faults, checkpoint_tamper=mode, crash_points=crash_points
            )
        elif feature == "equivocate":
            palette = tuple(r for r in RATE_PALETTE if r > 0.0)
            faults = replace(faults, equivocate_rate=self._choice(palette))
        else:  # shard_flip
            palette = tuple(r for r in RATE_PALETTE if r > 0.0)
            faults = replace(
                faults,
                shard_flip_rate=self._choice(palette),
                shard_flip_target=self._follower(),
            )
            if genome.shards == 1:
                genome = replace(genome, shards=self._choice((2, 4)))
        return replace(genome, faults=faults)

    def _op_remove_fault(self, genome: PlanGenome) -> PlanGenome:
        active = genome.active_faults()
        if not active:
            return genome
        label = self._choice(active)
        faults = genome.faults
        if label.startswith("crash:"):
            victim = self._rng.randbelow(len(faults.crash_points))
            faults = replace(
                faults,
                crash_points=tuple(
                    p for i, p in enumerate(faults.crash_points) if i != victim
                ),
            )
        elif label.startswith("partition:"):
            victim = self._rng.randbelow(len(faults.partition_windows))
            faults = replace(
                faults,
                partition_windows=tuple(
                    w
                    for i, w in enumerate(faults.partition_windows)
                    if i != victim
                ),
            )
        elif label.startswith("tamper:"):
            faults = replace(faults, checkpoint_tamper="")
        else:
            faults = replace(faults, **{label: 0.0})
        return replace(genome, faults=faults)

    def _op_retarget_link(self, genome: PlanGenome) -> PlanGenome:
        target_kind = self._choice(
            ("withhold", "shard_flip", "crash", "partition")
        )
        faults = genome.faults
        if target_kind == "withhold":
            faults = replace(faults, withhold_target=self._member())
        elif target_kind == "shard_flip":
            if faults.shard_flip_rate > 0.0:
                faults = replace(faults, shard_flip_target=self._follower())
        elif target_kind == "crash" and faults.crash_points:
            index = self._rng.randbelow(len(faults.crash_points))
            points = list(faults.crash_points)
            points[index] = (self._member(), points[index][1])
            faults = replace(faults, crash_points=tuple(points))
        elif target_kind == "partition" and faults.partition_windows:
            index = self._rng.randbelow(len(faults.partition_windows))
            windows = list(faults.partition_windows)
            windows[index] = (self._member(),) + windows[index][1:]
            faults = replace(faults, partition_windows=tuple(windows))
        return replace(genome, faults=faults)

    def _op_shift_crash_index(self, genome: PlanGenome) -> PlanGenome:
        faults = genome.faults
        if not faults.crash_points:
            return genome
        index = self._rng.randbelow(len(faults.crash_points))
        delta = self._choice((-3, -2, -1, 1, 2, 3))
        points = list(faults.crash_points)
        enclave_id, ecall_index = points[index]
        points[index] = (
            enclave_id,
            min(self.max_crash_index, max(1, ecall_index + delta)),
        )
        return replace(genome, faults=replace(faults, crash_points=tuple(points)))

    def _op_shift_partition(self, genome: PlanGenome) -> PlanGenome:
        faults = genome.faults
        if not faults.partition_windows:
            return genome
        index = self._rng.randbelow(len(faults.partition_windows))
        windows = list(faults.partition_windows)
        node_id, start_round, blocked_ops = windows[index]
        if self._rng.randbelow(2):
            start_round = min(
                self.max_partition_round,
                max(1, start_round + self._choice((-2, -1, 1, 2))),
            )
        else:
            blocked_ops = min(4, max(1, blocked_ops + self._choice((-1, 1))))
        windows[index] = (node_id, start_round, blocked_ops)
        return replace(
            genome, faults=replace(faults, partition_windows=tuple(windows))
        )

    def _op_reseed_plan(self, genome: PlanGenome) -> PlanGenome:
        return replace(
            genome,
            faults=replace(genome.faults, seed=self._rng.randbelow(1 << 30)),
        )

    def _op_flip_axis(self, genome: PlanGenome) -> PlanGenome:
        axis = self._choice(
            ("mode", "f", "shards", "supervised", "integrity")
        )
        if axis == "mode":
            return replace(genome, mode=self._choice(MODES))
        if axis == "f":
            return replace(genome, f=self._rng.randbelow(2))
        if axis == "shards":
            return replace(genome, shards=self._choice(SHARD_PALETTE))
        if axis == "supervised":
            return replace(genome, supervised=bool(self._rng.randbelow(2)))
        return replace(genome, integrity=bool(self._rng.randbelow(2)))

    def _op_splice_plans(
        self, genome: PlanGenome, other: Optional[PlanGenome]
    ) -> PlanGenome:
        if other is None:
            return genome
        faults = genome.faults
        updates = {}
        for name in RATE_FIELDS:
            if self._rng.randbelow(2):
                updates[name] = getattr(other.faults, name)
        if self._rng.randbelow(2):
            updates["crash_points"] = other.faults.crash_points
        if self._rng.randbelow(2):
            updates["partition_windows"] = other.faults.partition_windows
        if self._rng.randbelow(2):
            updates["checkpoint_tamper"] = other.faults.checkpoint_tamper
        if self._rng.randbelow(2):
            updates["withhold_target"] = other.faults.withhold_target
        if updates.get("shard_flip_rate", faults.shard_flip_rate) > 0.0:
            updates["shard_flip_target"] = (
                other.faults.shard_flip_target
                or faults.shard_flip_target
                or self._follower()
            )
        genome = replace(genome, faults=replace(faults, **updates))
        if self._rng.randbelow(2):
            genome = replace(genome, shards=other.shards, mode=other.mode)
        return genome

    # -- the front door -------------------------------------------------------

    def mutate(
        self,
        genome: PlanGenome,
        pool: Sequence[PlanGenome] = (),
    ) -> PlanGenome:
        """One typed mutation of ``genome``, normalized to validity.

        ``pool`` supplies splice partners (the corpus genomes); when
        empty the splice operator degrades to identity.  Determinism
        contract: two runs that feed the same seed, the same input
        genomes and the same pool sequence observe byte-identical
        mutated genomes (see ``tests/test_fuzz_mutator.py``).
        """
        operator = self._choice(OPERATORS)
        try:
            if operator == "splice_plans":
                partner = self._choice(pool) if pool else None
                mutated = self._op_splice_plans(genome, partner)
            else:
                mutated = getattr(self, f"_op_{operator}")(genome)
        except ConfigError:
            # FaultConfig validates eagerly (rate simplex, targets), so
            # a cross-feature edit can be rejected before normalize()
            # gets to rescale it.  The draw stream has already advanced,
            # so degrading to identity keeps the sequence deterministic.
            mutated = genome
        return normalize(mutated, self.members)
