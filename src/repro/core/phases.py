"""Result structures of a GenDPR study.

A run produces one :class:`StudyResult`: the three shrinking SNP sets
(paper notation ``L' ⊇ L'' ⊇ L_safe``), the per-task timings, traffic
accounting and — in collusion-tolerant mode — the per-combination safe
sets and the vulnerable SNPs that were withheld.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..errors import ProtocolError
from ..obs.report import RunReport
from .timing import PhaseTimings


def _require_subset(smaller: List[int], larger: List[int], names: str) -> None:
    if not set(smaller) <= set(larger):
        raise ProtocolError(f"pipeline violated monotonicity: {names}")


@dataclass(frozen=True)
class CombinationOutcome:
    """The safe set obtained for one honest-subset combination."""

    member_ids: Tuple[str, ...]
    f: int
    safe_snps: Tuple[int, ...]


@dataclass
class CollusionReport:
    """Details of the collusion-tolerance evaluation (Table 5)."""

    outcomes: List[CombinationOutcome] = field(default_factory=list)
    #: Safe set of the plain (f = 0) evaluation over the full federation.
    baseline_safe: Tuple[int, ...] = ()

    @property
    def combinations_evaluated(self) -> int:
        return len(self.outcomes)

    def vulnerable_snps(self, final_safe: Tuple[int, ...]) -> Tuple[int, ...]:
        """SNPs safe at f=0 but withheld once collusion is considered."""
        return tuple(sorted(set(self.baseline_safe) - set(final_safe)))


@dataclass
class StudyResult:
    """Everything a GenDPR run reports."""

    study_id: str
    leader_id: str
    num_members: int
    l_des: int
    l_prime: List[int]
    l_double_prime: List[int]
    l_safe: List[int]
    timings: PhaseTimings
    #: Wire bytes sent between sites over the whole run.
    network_bytes: int = 0
    network_messages: int = 0
    #: Peak trusted memory per enclave id (bytes).
    enclave_peak_memory: Dict[str, int] = field(default_factory=dict)
    #: CPU utilisation per enclave id (fraction of elapsed wall time).
    enclave_cpu_utilization: Dict[str, float] = field(default_factory=dict)
    #: Residual identification power of the released set.
    release_power: float = 0.0
    collusion: Optional[CollusionReport] = None
    #: How the OCALL rounds were executed ("sequential" or "parallel").
    execution_mode: str = "sequential"
    #: Request/response round counts per OCALL kind (e.g. ``{"lr": 1}``);
    #: the batched Phase-3 protocol keeps ``lr`` at one round regardless
    #: of how many collusion combinations were evaluated.
    ocall_rounds: Dict[str, int] = field(default_factory=dict)
    #: Spans + metrics + config fingerprint of this run; populated only
    #: when the study config enables observability.
    observability: Optional[RunReport] = None

    def __post_init__(self) -> None:
        if not 0 < self.num_members:
            raise ProtocolError("num_members must be positive")
        if self.l_des <= 0:
            raise ProtocolError("l_des must be positive")
        full = list(range(self.l_des))
        _require_subset(self.l_prime, full, "L' ⊆ L_des")
        _require_subset(self.l_double_prime, self.l_prime, "L'' ⊆ L'")
        _require_subset(self.l_safe, self.l_double_prime, "L_safe ⊆ L''")

    @property
    def retained_after_maf(self) -> int:
        return len(self.l_prime)

    @property
    def retained_after_ld(self) -> int:
        return len(self.l_double_prime)

    @property
    def retained_after_lr(self) -> int:
        return len(self.l_safe)

    def phase_counts(self) -> Dict[str, int]:
        """The Table 4 row for this run."""
        return {
            "MAF": self.retained_after_maf,
            "LD": self.retained_after_ld,
            "LR": self.retained_after_lr,
        }

    def summary(self) -> str:
        counts = self.phase_counts()
        return (
            f"{self.study_id}: L_des={self.l_des} -> "
            f"MAF {counts['MAF']} / LD {counts['LD']} / LR {counts['LR']} "
            f"(leader {self.leader_id}, {self.num_members} GDOs, "
            f"{self.timings.total_seconds * 1000:.1f} ms)"
        )
