"""GenDPR's trusted module.

One enclave class implements both roles of Figure 2 — the member-side
modules (MAF/LD/LR-test "phase trusted modules") and the leader-side
coordination module.  Deploying a single trusted codebase everywhere is
what lets every pair of enclaves mutually attest to the *same*
measurement; which instance acts as leader is decided by the random
election, not by code identity.

Untrusted hosts interact with this class exclusively through ECALLs.
Leader-side ECALLs receive an ``ocall`` callable through which the
enclave asks the host to exchange encrypted frames with other members —
the SGX OCALL pattern: the host is a blind router, all payloads cross
it AEAD-protected under channel keys only enclaves hold.

Data flow per phase (paper Sections 5.3-5.5):

* **Summaries** — members answer with their case size and allele-count
  vector over ``L_des``.
* **Phase 1 (MAF)** — leader-local: aggregate counts, filter on folded
  global MAF, intersect across collusion combinations.
* **Phase 2 (LD)** — leader walks adjacent pairs of the retained list,
  requesting the five correlation sums per pair from every member,
  aggregating them with its own and the reference set's, and keeping
  the better chi-squared-ranked SNP of each dependent pair.
* **Phase 3 (LR-test)** — leader broadcasts the global case/reference
  frequency vectors, members return local LR matrices, the leader
  merges them with its own and the reference matrix and runs the
  empirical safe-subset search.  All collusion combinations (and the
  plain track) are batched into a *single* request/response round:
  each member receives every entry it participates in at once and
  answers with all of its matrices in one frame.

Collusion tolerance (Section 5.6) runs every phase over all
``C(G, G-f)`` honest-member combinations and intersects the outcomes;
the full-federation combination (f = 0) is always included so the
release is also safe against purely external adversaries.
"""

from __future__ import annotations

import hashlib
import hmac
import itertools
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..crypto.kdf import derive_subkey
from ..crypto.signing import MacSigner
from ..errors import (
    ChannelError,
    EquivocationError,
    PhaseOrderError,
    ProtocolError,
    StaleCheckpointError,
    TEEError,
    TranscriptDivergenceError,
)
from ..genomics.vcf import SignedMatrix, SignedVcf
from ..net import serialization
from ..stats import chisq, ld, lr_test, maf
from ..tee.channel import ChannelEndpoint
from ..tee.enclave import Enclave, ecall
from ..tee.sealing import SealedBlob, seal, unseal
from ..tee.storage import ColumnReader, SealedColumnStore, seal_matrix
from . import pipeline
from .shard import AggregationTree, ShardPlan, aggregation_tree, plan_shards

#: Host-routed exchange: {peer_id: request_frame} -> {peer_id: response_frame}.
OcallExchange = Callable[[str, Dict[str, bytes]], Dict[str, bytes]]

#: Width of the sliding pair window prefetched in one round before the LD
#: walk starts: pair (i, j) is prefetched when j - i <= _LD_WINDOW.
_LD_WINDOW = 8
#: Speculative pairs fetched per on-demand round when the walk needs a
#: pair outside the prefetched window (a candidate outliving a block).
_LD_LOOKAHEAD = 32

_STAGES = ("prime", "double_prime", "safe")

#: Shard-task kinds the tree aggregation knows how to combine.
_SHARD_KINDS = ("counts", "moments")
#: Zero state of the per-enclave shard counters (observability bridge).
_SHARD_COUNTER_ZERO = {
    "tasks_opened": 0,
    "tasks_accepted": 0,
    "partials_emitted": 0,
    "partials_ingested": 0,
    "partial_bytes": 0,
    "peak_partial_bytes": 0,
}


class GenDPREnclave(Enclave):
    """The federation's trusted module (member + leader roles)."""

    CODE_VERSION = "1"

    def __init__(
        self,
        platform_key: bytes,
        enclave_id: str,
        data_auth_key: bytes,
        rng=None,
    ):
        super().__init__(platform_key, enclave_id, rng=rng)
        self._data_signer = MacSigner(data_auth_key, purpose="vcf-dataset")
        self._channels: Dict[str, ChannelEndpoint] = {}
        self._study: Optional[Dict[str, Any]] = None
        self._combos: List[Tuple[str, int, Tuple[str, ...]]] = []
        # Local dataset metadata (the sealed chunks live with the host).
        self._local_rows = 0
        self._local_cols = 0
        # Leader aggregation state.
        self._member_counts: Dict[str, np.ndarray] = {}
        self._member_sizes: Dict[str, int] = {}
        self._reference_counts: Optional[np.ndarray] = None
        self._reference_rows = 0
        self._combo_counts: Dict[str, np.ndarray] = {}
        self._combo_sizes: Dict[str, int] = {}
        self._ranking_cache: Dict[str, np.ndarray] = {}
        self._member_pair_moments: Dict[Tuple[str, int, int], ld.PairMoments] = {}
        self._local_pair_moments: Dict[Tuple[int, int], ld.PairMoments] = {}
        self._reference_pair_moments: Dict[Tuple[int, int], ld.PairMoments] = {}
        #: Pairs whose moments are cached for every party (fast-path check).
        self._ld_cached: set = set()
        # Plain (collusion-oblivious) track, kept alongside the tolerant
        # pipeline so Table 5 can report what collusion tolerance withheld.
        self._plain_retained: Dict[str, List[int]] = {}
        self._retained: Dict[str, List[int]] = {}
        self._combo_safe: Dict[str, Tuple[int, ...]] = {}
        self._release_power = 0.0
        self._lr_request_counter = 0
        # Moment-exchange cache effectiveness (observability only, not
        # protocol state): pooled-lookup count vs. pairs actually fetched
        # from members over the wire.
        self._ld_pairs_requested = 0
        self._ld_pairs_fetched = 0
        # SNP-range sharding: every enclave derives the same plan and
        # aggregation tree from the attested study parameters, so a
        # Byzantine orchestrator can neither reroute shards nor re-root
        # the combine tree.
        self._shard_plan: Optional[ShardPlan] = None
        self._shard_tree: Optional[AggregationTree] = None
        self._shard_tasks: Dict[str, Dict[str, Any]] = {}
        self._shard_accum: Dict[str, Dict[str, Any]] = {}
        #: Shard indices whose counts task completed (resume boundary;
        #: a set so a repaired re-run folds idempotently).
        self._shard_counts_done: set = set()
        #: Shard indices whose moments task completed (resume boundary).
        self._shard_moments_done: set = set()
        #: Tree-repair generation: bumped by ``shard_repair`` after a
        #: mid-round member loss, rotating the deterministic layout.
        self._shard_epoch = 0
        #: Leader ledger of leaf commitments, keyed (kind, shard, node);
        #: the integrity layer's verification re-run compares against it.
        self._shard_commitments: Dict[Tuple[str, int, str], bytes] = {}
        self._ld_shard_buckets: Optional[Dict[int, List[Tuple[int, int]]]] = None
        # Per-(combination, pair) pooled case moments installed by the
        # tree aggregation (sharded runs); the flat path leaves it empty.
        self._combo_pair_moments: Dict[Tuple[str, int, int], ld.PairMoments] = {}
        self._shard_counters: Dict[str, int] = dict(_SHARD_COUNTER_ZERO)
        # Memoized sliding-window pair lists keyed by the SNP list bytes.
        self._window_pairs_cache: Dict[bytes, List[Tuple[int, int]]] = {}
        # Member-side record of leader broadcasts.
        self._received_retained: Dict[str, List[int]] = {}
        # Outbound payload audit trail (kind, peer, bytes, genotype_rows).
        self._audit_log: List[Dict[str, Any]] = []
        # Broadcast-consistency state: digest of the canonical broadcast
        # payload per stage (leader records at send, members at ingest),
        # signed during the echo round with a key every enclave derives
        # from the study's data-authenticity root.
        self._echo_signer = MacSigner(
            derive_subkey(data_auth_key, "broadcast-echo"),
            purpose="broadcast-echo",
        )
        self._broadcast_digests: Dict[str, bytes] = {}
        # Checkpoint-freshness counter (leader only; installed at build
        # time from the hosting platform, like channels).
        self._rollback_counter = None
        # Simulation hook: a compromised-broadcaster adversary the chaos
        # tier installs to make the leader equivocate (never installed
        # in production configurations).
        self._equivocation_adversary = None
        # Simulation hook: a compromised-module adversary that falsifies
        # this enclave's own shard-leaf statistics before emission
        # (exercises the dual-run commitment comparison).
        self._shard_adversary = None

    # ------------------------------------------------------------------
    # Trusted provisioning (attestation-time, not host-callable ECALLs)
    # ------------------------------------------------------------------

    def install_channel(self, endpoint: ChannelEndpoint) -> None:
        """Install an attested channel endpoint.

        Called by the federation setup immediately after
        :func:`repro.tee.channel.establish_channel`; conceptually this
        happens inside the attestation ceremony, never across the
        untrusted ECALL boundary.
        """
        if endpoint.local_id != self.enclave_id:
            raise TEEError("endpoint does not belong to this enclave")
        self._channels[endpoint.peer_id] = endpoint

    def install_rollback_counter(self, counter) -> None:
        """Bind the platform's monotonic counter for checkpoint epochs.

        Provisioning-time, like :meth:`install_channel`: the counter is
        platform state (it survives enclave teardown), so a replacement
        enclave on the same platform sees its predecessor's advances —
        which is exactly what defeats checkpoint rollback.
        """
        self._rollback_counter = counter

    def install_equivocation_adversary(self, adversary) -> None:
        """Install the chaos tier's compromised-broadcaster hook.

        Simulation-only: models a leader whose broadcast path is under
        adversarial control, to exercise the echo-round detection.
        """
        self._equivocation_adversary = adversary

    def install_shard_adversary(self, adversary) -> None:
        """Install the chaos tier's compromised-module hook.

        Simulation-only: models an interior tree node whose leaf
        statistics are falsified before emission.  A *crash* replacement
        re-installs the hook (the platform stays compromised); a
        *quarantine* replacement installs a fresh attested module and
        passes ``None`` (the lie was in the module, and re-attestation
        restores honesty).
        """
        self._shard_adversary = adversary

    @classmethod
    def trusted_state_names(cls) -> set:
        return super().trusted_state_names() | {
            "_channels",
            "_data_signer",
            "_echo_signer",
            "_member_counts",
            "_member_pair_moments",
            "_rollback_counter",
            "_shard_accum",
            "_combo_pair_moments",
        }

    # ------------------------------------------------------------------
    # Framing helpers
    # ------------------------------------------------------------------

    def _channel(self, peer: str) -> ChannelEndpoint:
        try:
            return self._channels[peer]
        except KeyError:
            raise ProtocolError(
                f"{self.enclave_id} has no attested channel to {peer}"
            ) from None

    def _protect(self, peer: str, kind: str, payload: Any) -> bytes:
        raw = serialization.encode(payload)
        self._audit_log.append(
            {
                "peer": peer,
                "kind": kind,
                "plaintext_bytes": len(raw),
                "genotype_rows": 0,
            }
        )
        return self._channel(peer).protect(raw, kind=kind.encode("utf-8"))

    def _open(self, peer: str, kind: str, frame: bytes) -> Any:
        raw = self._channel(peer).open(frame, kind=kind.encode("utf-8"))
        return serialization.decode(raw)

    # ------------------------------------------------------------------
    # Configuration
    # ------------------------------------------------------------------

    @ecall
    def configure(self, params: Dict[str, Any]) -> None:
        """Fix the study parameters (thresholds, members, leader, f values)."""
        required = {
            "study_id",
            "snp_count",
            "maf_cutoff",
            "ld_cutoff",
            "alpha",
            "beta",
            "member_ids",
            "leader_id",
            "f_values",
        }
        missing = required - set(params)
        if missing:
            raise ProtocolError(f"study configuration misses {sorted(missing)}")
        members = sorted(params["member_ids"])
        if params["leader_id"] not in members:
            raise ProtocolError("leader must be a federation member")
        if self.enclave_id not in members:
            raise ProtocolError(
                f"{self.enclave_id} is not part of this federation"
            )
        self._study = dict(params, member_ids=members)
        self._combos = self._build_combinations(members, list(params["f_values"]))
        self._reset_study_state()
        self._build_shard_layout()

    def _build_shard_layout(self) -> None:
        """Derive the shard plan and combine tree from the attested study.

        Every enclave recomputes both locally from ``configure``'s
        parameters (which the fingerprint covers), so the untrusted
        orchestrator can only *schedule* shard work, never redefine
        which ranges exist, who owns them, or who aggregates for whom.
        """
        study = self._config()
        num_shards = int(study.get("num_shards", 1))
        if num_shards <= 1:
            self._shard_plan = None
            self._shard_tree = None
            return
        members = list(study["member_ids"])
        self._shard_plan = plan_shards(
            study["snp_count"], num_shards, members,
            epoch=self._shard_epoch,
        )
        self._shard_tree = aggregation_tree(
            members, study["leader_id"], epoch=self._shard_epoch
        )

    def _reset_study_state(self) -> None:
        """Clear every per-study aggregate so a warm enclave can serve a
        new study over its existing substrate (channels, signers,
        rollback counter survive; everything a phase accumulates does
        not).  Safe under failover too: a replacement enclave is
        configured fresh and then ``restore_state`` overwrites exactly
        the checkpointed fields."""
        self._local_rows = 0
        self._local_cols = 0
        self._member_counts = {}
        self._member_sizes = {}
        self._reference_counts = None
        self._reference_rows = 0
        self._combo_counts = {}
        self._combo_sizes = {}
        self._ranking_cache = {}
        self._member_pair_moments = {}
        self._local_pair_moments = {}
        self._reference_pair_moments = {}
        self._ld_cached = set()
        self._plain_retained = {}
        self._retained = {}
        self._combo_safe = {}
        self._release_power = 0.0
        self._lr_request_counter = 0
        self._ld_pairs_requested = 0
        self._ld_pairs_fetched = 0
        self._received_retained = {}
        self._audit_log = []
        self._broadcast_digests = {}
        self._shard_plan = None
        self._shard_tree = None
        self._shard_tasks = {}
        for task_id in list(self._shard_accum):
            self._drop_shard_accum(task_id)
        self._shard_counts_done = set()
        self._shard_moments_done = set()
        self._shard_epoch = 0
        self._shard_commitments = {}
        self._ld_shard_buckets = None
        self._combo_pair_moments = {}
        self._shard_counters = dict(_SHARD_COUNTER_ZERO)
        self._window_pairs_cache = {}

    @staticmethod
    def _build_combinations(
        members: List[str], f_values: List[int]
    ) -> List[Tuple[str, int, Tuple[str, ...]]]:
        """All honest-subset combinations to verify, f=0 first."""
        combos: List[Tuple[str, int, Tuple[str, ...]]] = [
            ("f0", 0, tuple(members))
        ]
        for f in sorted(set(f_values)):
            if f <= 0:
                continue
            if f >= len(members):
                raise ProtocolError(
                    f"cannot tolerate f={f} among G={len(members)} members"
                )
            for subset in itertools.combinations(members, len(members) - f):
                combos.append((f"f{f}:" + "+".join(subset), f, subset))
        return combos

    def _config(self) -> Dict[str, Any]:
        if self._study is None:
            raise PhaseOrderError("enclave is not configured")
        return self._study

    @property
    def is_leader(self) -> bool:
        return self._config()["leader_id"] == self.enclave_id

    # ------------------------------------------------------------------
    # Dataset loading
    # ------------------------------------------------------------------

    @ecall
    def load_local_dataset(self, signed_dataset) -> SealedColumnStore:
        """Verify a signed local dataset and seal it for streaming access.

        Accepts either a :class:`SignedVcf` (text interchange) or a
        :class:`SignedMatrix` (binary fast path); both carry the
        authenticity signature the trusted module checks per the threat
        model.  The sealed store is returned to the host (sealed data
        lives on untrusted storage); the enclave retains only the
        dimensions.
        """
        config = self._config()
        if isinstance(signed_dataset, SignedMatrix):
            matrix = signed_dataset.open_verified(self._data_signer)
        elif isinstance(signed_dataset, SignedVcf):
            _panel, matrix = signed_dataset.open_verified(self._data_signer)
        else:
            raise ProtocolError(
                f"unsupported dataset container {type(signed_dataset).__name__}"
            )
        if matrix.num_snps != config["snp_count"]:
            raise ProtocolError(
                f"dataset covers {matrix.num_snps} SNPs, study expects "
                f"{config['snp_count']}"
            )
        self._local_rows = matrix.num_individuals
        self._local_cols = matrix.num_snps
        return seal_matrix(self, matrix.array(), label="case")

    @ecall
    def load_reference_matrix(
        self, raw: bytes, num_rows: int
    ) -> SealedColumnStore:
        """Seal the public reference population for streaming access."""
        config = self._config()
        num_snps = config["snp_count"]
        if num_rows <= 0 or len(raw) != num_rows * num_snps:
            raise ProtocolError("reference matrix has inconsistent size")
        matrix = np.frombuffer(raw, dtype=np.uint8).reshape(num_rows, num_snps)
        if matrix.max(initial=0) > 1:
            raise ProtocolError("reference genotypes must be binary")
        self._reference_rows = num_rows
        return seal_matrix(self, matrix, label="reference")

    # ------------------------------------------------------------------
    # Local computations shared by both roles
    # ------------------------------------------------------------------

    def _local_counts(self, store: SealedColumnStore) -> np.ndarray:
        with ColumnReader(self, store) as reader:
            return reader.column_sums()

    def _local_moments(
        self, store: SealedColumnStore, pairs: Sequence[Tuple[int, int]]
    ) -> np.ndarray:
        """Five correlation sums per requested pair (rows match input).

        Vectorised: the unique columns are gathered once through the
        sealed store (one unseal per chunk), then all pair sums are
        computed as matrix reductions.
        """
        if not pairs:
            return np.zeros((0, 5), dtype=np.int64)
        pair_array = np.asarray(pairs, dtype=np.int64)
        unique_columns, inverse = np.unique(pair_array, return_inverse=True)
        inverse = inverse.reshape(pair_array.shape)
        with ColumnReader(self, store) as reader:
            gathered = reader.columns(unique_columns.tolist())
        # One moment gather is in flight per enclave at a time (ECALLs
        # are synchronous), so a fixed name is unambiguous — and unlike
        # an id()-derived name it is identical across replayed runs.
        buffer_name = "ld-moments"
        self.meter.register_buffer(buffer_name, gathered.nbytes)
        try:
            return ld.pair_moments_kernel(gathered, inverse)
        finally:
            self.meter.release_buffer(buffer_name)

    # ------------------------------------------------------------------
    # Member-side ECALLs (answer leader requests)
    # ------------------------------------------------------------------

    @ecall
    def answer_summary(self, store: SealedColumnStore, frame: bytes) -> bytes:
        """Produce the caseLocalCounts vector and local case size.

        A ``sizes`` request returns only the local population size: the
        sharded pipeline aggregates the count vectors through the
        combine tree instead, but the leader still needs every member's
        declared size up front to validate tree partials and LR shapes.
        """
        config = self._config()
        leader = config["leader_id"]
        request = self._open(leader, "summary", frame)
        if request.get("req") == "sizes":
            return self._protect(leader, "summary", {"n_case": store.num_rows})
        if request.get("req") != "summary":
            raise ProtocolError("malformed summary request")
        counts = self._local_counts(store)
        # 32-bit on the wire: counts are bounded by the local population
        # size, and 4 * L_des bytes is the paper's bandwidth figure.
        return self._protect(
            leader,
            "summary",
            {"n_case": store.num_rows, "counts": counts.astype(np.int32)},
        )

    @ecall
    def answer_ld(self, store: SealedColumnStore, frame: bytes) -> bytes:
        """Compute local correlation sums for the requested SNP pairs."""
        leader = self._config()["leader_id"]
        request = self._open(leader, "ld", frame)
        pair_array = np.asarray(request["pairs"], dtype=np.int64)
        if pair_array.ndim != 2 or pair_array.shape[1] != 2:
            raise ProtocolError("malformed LD pair request")
        pairs = [(int(l), int(r)) for l, r in pair_array]
        moments = self._local_moments(store, pairs)
        return self._protect(
            leader,
            "ld",
            {"req_id": request["req_id"], "moments": moments},
        )

    @ecall
    def answer_lr(self, store: SealedColumnStore, frame: bytes) -> bytes:
        """Build this member's local LR matrices for one batched round.

        The leader ships every (combination, frequency-vector) entry
        this member participates in as one request: distinct column
        sets are gathered from the sealed store once each, then every
        entry's ``N x L`` matrix is computed against its own frequency
        vectors and all of them travel back in a single frame.
        """
        leader = self._config()["leader_id"]
        request = self._open(leader, "lr", frame)
        req_id = request["req_id"]
        column_sets = {
            set_id: [int(c) for c in cols]
            for set_id, cols in request["column_sets"].items()
        }
        matrices: Dict[str, np.ndarray] = {}
        with ColumnReader(self, store) as reader:
            gathered = {
                set_id: reader.columns(cols)
                for set_id, cols in sorted(column_sets.items())
            }
            for entry in request["requests"]:
                set_id = entry["set"]
                if set_id not in gathered:
                    raise ProtocolError(  # lint: disable=R6 (request/set ids are control-plane metadata)
                        f"LR entry {entry['rid']!r} references unknown "
                        f"column set {set_id!r}"
                    )
                genotypes = gathered[set_id]
                label = f"lr-local/{req_id}/{entry['rid']}"
                self.meter.register_buffer(label, genotypes.nbytes * 9)
                try:
                    matrices[entry["rid"]] = lr_test.lr_matrix(
                        genotypes, entry["case_freqs"], entry["ref_freqs"]
                    )
                finally:
                    self.meter.release_buffer(label)
        return self._protect(
            leader,
            "lr",
            {"req_id": req_id, "matrices": matrices},
        )

    @ecall
    def ingest_retained(self, frame: bytes) -> Dict[str, Any]:
        """Receive a leader broadcast of a retained SNP list."""
        leader = self._config()["leader_id"]
        payload = self._open(leader, "retained", frame)
        stage = payload["stage"]
        if stage not in _STAGES:
            raise ProtocolError(f"unknown broadcast stage {stage!r}")  # lint: disable=R6 (stage names are protocol control-plane metadata)
        snps = [int(s) for s in payload["snps"]]
        self._received_retained[stage] = snps
        self._broadcast_digests[stage] = self._broadcast_digest(stage, snps)
        return {"stage": stage, "snps": snps}

    @ecall
    def received_retained(self, stage: str) -> List[int]:
        """The most recent broadcast list for ``stage`` (member view)."""
        if stage not in self._received_retained:
            raise PhaseOrderError(f"no {stage!r} broadcast received yet")
        return list(self._received_retained[stage])

    # ------------------------------------------------------------------
    # Leader-side ECALLs
    # ------------------------------------------------------------------

    def _other_members(self) -> List[str]:
        config = self._config()
        return [m for m in config["member_ids"] if m != self.enclave_id]

    def _require_leader(self) -> None:
        if not self.is_leader:
            raise ProtocolError(
                f"{self.enclave_id} is not the elected leader"
            )

    @ecall
    def lead_collect_summaries(
        self,
        store: SealedColumnStore,
        ref_store: SealedColumnStore,
        ocall: OcallExchange,
    ) -> None:
        """Gather member summaries and compute leader + reference counts."""
        self._require_leader()
        requests = {
            member: self._protect(member, "summary", {"req": "summary"})
            for member in self._other_members()
        }
        responses = ocall("summary", requests)
        for member in self._other_members():
            if member not in responses:
                raise ProtocolError(f"no summary received from {member}")
            payload = self._open(member, "summary", responses[member])
            counts = np.asarray(payload["counts"], dtype=np.int64)
            n_case = int(payload["n_case"])
            if counts.shape[0] != self._config()["snp_count"]:
                raise ProtocolError(f"summary from {member} has wrong width")
            if np.any(counts < 0) or np.any(counts > n_case):
                raise ProtocolError(f"summary from {member} is inconsistent")
            self._member_counts[member] = counts
            self._member_sizes[member] = n_case
        # The leader is itself a member: add its own data.
        self._member_counts[self.enclave_id] = self._local_counts(store)
        self._member_sizes[self.enclave_id] = store.num_rows
        with ColumnReader(self, ref_store) as reader:
            self._reference_counts = reader.column_sums()
        self._reference_rows = ref_store.num_rows

    @ecall
    def lead_collect_sizes(
        self,
        store: SealedColumnStore,
        ref_store: SealedColumnStore,
        ocall: OcallExchange,
    ) -> None:
        """Sharded replacement for :meth:`lead_collect_summaries`.

        Collects only the member population *sizes* (one integer per
        member instead of an ``L``-wide vector); the count vectors
        themselves flow through the shard combine tree, so the leader
        never holds per-member counts and its fan-in stays bounded.
        """
        self._require_leader()
        if self._shard_plan is None:
            raise PhaseOrderError("study is not sharded")
        requests = {
            member: self._protect(member, "summary", {"req": "sizes"})
            for member in self._other_members()
        }
        responses = ocall("summary", requests)
        for member in self._other_members():
            if member not in responses:
                raise ProtocolError(f"no size report received from {member}")
            payload = self._open(member, "summary", responses[member])
            n_case = int(payload["n_case"])
            if n_case < 0:
                raise ProtocolError(f"negative population size from {member}")
            self._member_sizes[member] = n_case
        self._member_sizes[self.enclave_id] = store.num_rows
        with ColumnReader(self, ref_store) as reader:
            self._reference_counts = reader.column_sums()
        self._reference_rows = ref_store.num_rows

    def _combo_case_data(self, combo_members: Tuple[str, ...]) -> Tuple[np.ndarray, int]:
        counts = maf.aggregate_counts(
            [self._member_counts[m] for m in combo_members]
        )
        size = sum(self._member_sizes[m] for m in combo_members)
        return counts, size

    def _ranking(self, combo_id: str) -> np.ndarray:
        """Chi-squared ranking p-values of a combination (cached)."""
        if combo_id not in self._ranking_cache:
            if self._reference_counts is None:
                raise PhaseOrderError("summaries not collected yet")
            counts = self._combo_counts[combo_id]
            size = self._combo_sizes[combo_id]
            self._ranking_cache[combo_id] = chisq.rank_pvalues(
                counts, self._reference_counts, size, self._reference_rows
            )
        return self._ranking_cache[combo_id]

    @ecall
    def lead_run_maf(self) -> List[int]:
        """Phase 1: global MAF filter, intersected across combinations."""
        self._require_leader()
        if self._reference_counts is None:
            raise PhaseOrderError("summaries must be collected before MAF")
        config = self._config()
        if self._shard_plan is not None and (
            len(self._shard_counts_done) != self._shard_plan.num_shards
        ):
            raise PhaseOrderError(
                f"sharded count aggregation incomplete: "
                f"{len(self._shard_counts_done)} of "
                f"{self._shard_plan.num_shards} shards finished"
            )
        survivor_sets: List[set] = []
        for combo_id, _f, combo_members in self._combos:
            if self._shard_plan is not None:
                # Tree aggregation already installed the pooled counts.
                counts = self._combo_counts[combo_id]
                size = self._combo_sizes[combo_id]
            else:
                counts, size = self._combo_case_data(combo_members)
                self._combo_counts[combo_id] = counts
                self._combo_sizes[combo_id] = size
            total = maf.aggregate_counts([counts, self._reference_counts])
            frequencies = maf.allele_frequencies(
                total, size + self._reference_rows
            )
            survivors = maf.maf_filter(frequencies, config["maf_cutoff"])
            if combo_id == "f0":
                # The plain (collusion-oblivious) track: what a federation
                # without collusion tolerance would have released; Table 5
                # measures withheld SNPs against this baseline.
                self._plain_retained["prime"] = list(survivors)
            survivor_sets.append(set(survivors))
        retained = sorted(set.intersection(*survivor_sets))
        self._retained["prime"] = retained
        return list(retained)

    @ecall
    def lead_broadcast_retained(self, stage: str, ocall: OcallExchange) -> None:
        """Broadcast a retained list to every member over the channels."""
        self._require_leader()
        if stage not in self._retained:
            raise PhaseOrderError(f"stage {stage!r} not computed yet")
        snps = [int(s) for s in self._retained[stage]]
        # The digest the echo round will attest is always that of the
        # honest payload: a compromised broadcast path (the adversary
        # hook below) mutates what individual members receive, which is
        # exactly what the digest comparison then exposes.
        self._broadcast_digests[stage] = self._broadcast_digest(stage, snps)
        frames = {}
        for member in self._other_members():
            member_snps = snps
            if self._equivocation_adversary is not None:
                member_snps = self._equivocation_adversary.mutate(
                    stage, member, snps
                )
            frames[member] = self._protect(
                member, "retained", {"stage": stage, "snps": list(member_snps)}
            )
        ocall("retained", frames)

    # ------------------------------------------------------------------
    # SNP-range sharding: tree aggregation of partial statistics
    # ------------------------------------------------------------------
    #
    # One shard *task* covers one SNP range (counts) or one bucket of
    # the LD pair union (moments).  Enclaves combine partials pairwise
    # along the locally derived aggregation tree: each node adds its
    # children's partials to its own leaf contribution and emits one
    # bounded frame to its parent, so the leader ingests O(log G)
    # frames per task instead of G flat responses.  Because every
    # partial is an int64 sum and integer addition is associative and
    # commutative, the tree's grouping produces bit-identical pooled
    # statistics to the flat exchange — the invariant the equivalence
    # tests and the CI shard gate enforce.
    #
    # Collusion tolerance rides along: a leaf multiplies its local
    # statistics by its combination-membership vector, so one partial
    # carries every ``C(G, G-f)`` combination's pool at once and the
    # leader never sees a single member's contribution in isolation.

    def _shard_plan_required(self) -> ShardPlan:
        if self._shard_plan is None:
            raise PhaseOrderError("study is not sharded")
        return self._shard_plan

    def _shard_tree_required(self) -> AggregationTree:
        if self._shard_tree is None:
            raise PhaseOrderError("study is not sharded")
        return self._shard_tree

    def _combo_membership(self, node: str) -> np.ndarray:
        """0/1 vector over combinations: is ``node`` in each pool?"""
        return np.asarray(
            [1 if node in members else 0 for _, _f, members in self._combos],
            dtype=np.int64,
        )

    def _shard_stats_shape(self, spec: Dict[str, Any]) -> Tuple[int, ...]:
        num_combos = len(self._combos)
        if spec["kind"] == "counts":
            shard = self._shard_plan_required().ranges[spec["shard"]]
            return (num_combos, shard.width)
        # Moments travel as (mu_l, mu_r, mu_lr): binary genotypes make
        # the squared sums duplicate the linear ones, so the wire and
        # the combine accumulators carry 3 of the 5 columns and the
        # leader reconstructs the full five-tuple at fold time.
        return (num_combos, len(spec["pairs"]), 3)

    def _install_shard_task(self, spec: Dict[str, Any]) -> None:
        task_id = spec["task"]
        if task_id in self._shard_tasks:
            raise ProtocolError(f"shard task {task_id!r} already open")  # lint: disable=R6 (shard task ids are control-plane metadata)
        plan = self._shard_plan_required()
        if spec.get("kind") not in _SHARD_KINDS:
            raise ProtocolError(f"unknown shard task kind {spec.get('kind')!r}")  # lint: disable=R6 (shard task kinds are control-plane metadata)
        shard_index = int(spec["shard"])
        if not 0 <= shard_index < plan.num_shards:
            raise ProtocolError(f"shard index {shard_index} out of range")  # lint: disable=R6 (shard indices are control-plane metadata)
        normalized: Dict[str, Any] = {
            "task": str(task_id),
            "kind": str(spec["kind"]),
            "shard": shard_index,
        }
        if spec["kind"] == "moments":
            pair_array = np.asarray(spec["pairs"], dtype=np.int64)
            if pair_array.ndim != 2 or pair_array.shape[1] != 2:
                raise ProtocolError("malformed shard pair list")
            snp_count = self._config()["snp_count"]
            if pair_array.size and (
                pair_array.min() < 0 or pair_array.max() >= snp_count
            ):
                raise ProtocolError("shard pair list references unknown SNPs")
            normalized["pairs"] = [
                (int(left), int(right)) for left, right in pair_array
            ]
        self._shard_tasks[normalized["task"]] = normalized
        self._shard_counters["tasks_accepted"] += 1

    def _drop_shard_accum(self, task_id: str) -> None:
        if task_id in self._shard_accum:
            del self._shard_accum[task_id]
            self.meter.release_buffer(f"shard-accum/{task_id}")

    def _drop_shard_task(self, task_id: str) -> None:
        self._shard_tasks.pop(task_id, None)
        self._drop_shard_accum(task_id)

    def _shard_leaf(
        self, store: SealedColumnStore, spec: Dict[str, Any]
    ) -> Tuple[np.ndarray, np.ndarray, bytes]:
        """This node's combined partial: own leaf + all children's sums.

        Returns ``(stats, counts, leaf_digest)`` where ``leaf_digest``
        commits to this node's *own* leaf contribution (after any
        installed shard adversary mutated it, before child partials are
        folded in) — the quantity the dual-run commitment comparison
        checks for equivocation.

        Raises unless *every* tree child has delivered its partial — a
        host that drops or reorders combine rounds fails closed here.
        """
        tree = self._shard_tree_required()
        membership = self._combo_membership(self.enclave_id)
        if spec["kind"] == "counts":
            shard = self._shard_plan_required().ranges[spec["shard"]]
            with ColumnReader(self, store) as reader:
                local = reader.column_sums(shard.start, shard.stop)
            stats = membership[:, None] * local[None, :]
        else:
            local = self._local_moments(store, spec["pairs"])[:, :3]
            stats = membership[:, None, None] * local[None, :, :]
        if self._shard_adversary is not None:
            stats = np.asarray(
                self._shard_adversary.mutate(
                    spec["kind"], spec["shard"], stats
                ),
                dtype=np.int64,
            )
        leaf_digest = hashlib.sha256(
            np.ascontiguousarray(stats).tobytes()
        ).digest()
        counts = membership * store.num_rows
        accum = self._shard_accum.get(spec["task"])
        expected = len(tree.children(self.enclave_id))
        delivered = len(accum["seen"]) if accum is not None else 0
        if delivered != expected:
            raise ProtocolError(
                f"shard task {spec['task']!r} holds {delivered} of "
                f"{expected} child partials"
            )
        if accum is not None:
            stats = stats + accum["stats"]
            counts = counts + accum["counts"]
        return stats, counts, leaf_digest

    def _note_partial(self, stats: np.ndarray, counts: np.ndarray) -> None:
        size = int(stats.nbytes + counts.nbytes)
        self._shard_counters["partial_bytes"] += size
        self._shard_counters["peak_partial_bytes"] = max(
            self._shard_counters["peak_partial_bytes"], size
        )

    @ecall
    def ingest_shard_task(self, frame: bytes) -> None:
        """Accept a leader-authenticated shard task specification."""
        leader = self._config()["leader_id"]
        spec = self._open(leader, "shard-task", frame)
        self._install_shard_task(spec)

    def _shard_commitment_record(
        self, spec: Dict[str, Any], leaf_digest: bytes
    ) -> Tuple[bytes, bytes]:
        """Signed leaf commitment ``(record, sig)`` for one task emission.

        The record binds ``(study, kind, shard, node, leaf digest)``
        under the broadcast-echo MAC key every enclave derives from the
        study's data-authenticity root, so the untrusted hosts relaying
        commitments to the leader cannot forge or splice them.  The
        task id is deliberately absent: the integrity layer compares the
        commitment of a verification re-run (a fresh task id) against
        the original run's.
        """
        record = serialization.encode(
            {
                "study": self._config()["study_id"],
                "kind": spec["kind"],
                "shard": int(spec["shard"]),
                "node": self.enclave_id,
                "leaf": leaf_digest,
            }
        )
        return record, self._echo_signer.sign(record)

    @ecall
    def shard_emit_partial(
        self, store: SealedColumnStore, task_id: str, parent: str
    ) -> Dict[str, bytes]:
        """Combine own leaf with child partials; emit one frame upward.

        Returns the parent-bound frame plus a signed commitment to this
        node's own leaf contribution, which the orchestrator forwards to
        the leader (``lead_ingest_shard_commitment``) when the integrity
        layer is active.
        """
        spec = self._shard_tasks.get(task_id)
        if spec is None:
            raise PhaseOrderError(f"unknown shard task {task_id!r}")
        expected_parent = self._shard_tree_required().parent(self.enclave_id)
        if expected_parent is None:
            raise ProtocolError("the tree root does not emit partials")
        if parent != expected_parent:
            raise ProtocolError(
                f"{self.enclave_id} aggregates toward {expected_parent}, "
                f"not {parent}"
            )
        stats, counts, leaf_digest = self._shard_leaf(store, spec)
        self._note_partial(stats, counts)
        frame = self._protect(
            parent,
            "shard",
            {"task": task_id, "stats": stats, "counts": counts},
        )
        record, sig = self._shard_commitment_record(spec, leaf_digest)
        self._shard_counters["partials_emitted"] += 1
        self._drop_shard_task(task_id)
        return {"frame": frame, "commitment": record, "sig": sig}

    @ecall
    def shard_ingest_partial(self, peer: str, frame: bytes) -> None:
        """Add one tree child's partial into this node's accumulator."""
        payload = self._open(peer, "shard", frame)
        task_id = str(payload["task"])
        spec = self._shard_tasks.get(task_id)
        if spec is None:
            raise ProtocolError(  # lint: disable=R6 (task/peer ids are control-plane metadata)
                f"partial for unknown shard task {task_id!r} from {peer}"
            )
        tree = self._shard_tree_required()
        children = tree.children(self.enclave_id)
        if peer not in children:
            raise ProtocolError(
                f"{peer} is not a tree child of {self.enclave_id}"
            )
        stats = np.asarray(payload["stats"], dtype=np.int64)
        counts = np.asarray(payload["counts"], dtype=np.int64)
        expected_shape = self._shard_stats_shape(spec)
        if stats.shape != expected_shape or counts.shape != (
            len(self._combos),
        ):
            raise ProtocolError(f"malformed shard partial from {peer}")
        # Untrusted peer subtree: sums of binary genotypes over a pool
        # of ``counts[j]`` individuals must land in [0, counts[j]].
        limits = counts.reshape((-1,) + (1,) * (stats.ndim - 1))
        if (
            counts.min(initial=0) < 0
            or stats.min(initial=0) < 0
            or bool(np.any(stats > limits))
        ):
            raise ProtocolError(
                f"shard partial from {peer} is inconsistent with its "
                f"declared pool sizes"
            )
        accum = self._shard_accum.get(task_id)
        if accum is None:
            accum = {
                "stats": np.zeros_like(stats),
                "counts": np.zeros(len(self._combos), dtype=np.int64),
                "seen": set(),
            }
            self._shard_accum[task_id] = accum
            self.meter.register_buffer(
                f"shard-accum/{task_id}", stats.nbytes + counts.nbytes
            )
        if peer in accum["seen"]:
            raise ProtocolError(  # lint: disable=R6 (task/peer ids are control-plane metadata)
                f"duplicate shard partial from {peer} for task {task_id!r}"
            )
        accum["seen"].add(peer)
        accum["stats"] += stats
        accum["counts"] += counts
        self._shard_counters["partials_ingested"] += 1
        self._note_partial(accum["stats"], accum["counts"])

    def _ld_shard_pair_buckets(self) -> Dict[int, List[Tuple[int, int]]]:
        """The LD pair union partitioned by owning shard (cached)."""
        if self._ld_shard_buckets is None:
            plan = self._shard_plan_required()
            if "prime" not in self._retained:
                raise PhaseOrderError("MAF phase has not run")
            union = dict.fromkeys(self._window_pairs(self._retained["prime"]))
            if len(self._combos) > 1:
                union.update(
                    dict.fromkeys(
                        self._window_pairs(self._plain_retained["prime"])
                    )
                )
            buckets: Dict[int, List[Tuple[int, int]]] = {}
            if union:
                pairs = list(union)
                starts = np.asarray(
                    [r.start for r in plan.ranges], dtype=np.int64
                )
                lefts = np.asarray([p[0] for p in pairs], dtype=np.int64)
                owners = np.searchsorted(starts, lefts, side="right") - 1
                for pair, owner in zip(pairs, owners.tolist()):
                    buckets.setdefault(int(owner), []).append(pair)
            self._ld_shard_buckets = buckets
        return self._ld_shard_buckets

    @ecall
    def lead_open_shard_task(
        self, kind: str, shard_index: int, ocall: OcallExchange
    ) -> Optional[str]:
        """Open one shard task: broadcast its spec, install it locally.

        Returns the task id, or ``None`` when a moments shard owns no
        pairs of the LD union (nothing to aggregate).
        """
        self._require_leader()
        plan = self._shard_plan_required()
        if kind not in _SHARD_KINDS:
            raise ProtocolError(f"unknown shard task kind {kind!r}")
        if not 0 <= shard_index < plan.num_shards:
            raise ProtocolError(f"shard index {shard_index} out of range")
        spec: Dict[str, Any] = {"kind": kind, "shard": int(shard_index)}
        if kind == "moments":
            pairs = self._ld_shard_pair_buckets().get(int(shard_index), [])
            if not pairs:
                return None
            spec["pairs"] = np.asarray(pairs, dtype=np.int64)
        self._lr_request_counter += 1
        task_id = f"shard-{kind}-{shard_index}-{self._lr_request_counter}"
        spec["task"] = task_id
        frames = {
            member: self._protect(member, "shard-task", spec)
            for member in self._other_members()
        }
        if frames:
            ocall("shard-task", frames)
        self._install_shard_task(spec)
        self._shard_counters["tasks_opened"] += 1
        return task_id

    @ecall
    def lead_finish_shard_task(
        self, store: SealedColumnStore, task_id: str, verify: bool = False
    ) -> None:
        """Fold the completed tree root of one task into leader state.

        With ``verify=True`` (integrity layer, second run of the same
        ``(kind, shard)`` coordinates) nothing is folded: the freshly
        aggregated root is compared against the state the original run
        installed, and any divergence — after the per-node commitment
        comparison has already attributed lying leaves — is an
        unattributed equivocation (classified abort).
        """
        self._require_leader()
        spec = self._shard_tasks.get(task_id)
        if spec is None:
            raise PhaseOrderError(f"unknown shard task {task_id!r}")
        plan = self._shard_plan_required()
        stats, counts, leaf_digest = self._shard_leaf(store, spec)
        self._note_partial(stats, counts)
        self._ledger_own_leaf(spec, leaf_digest, verify)
        if verify:
            self._verify_shard_root(spec, stats, counts)
            self._drop_shard_task(task_id)
            return
        snp_count = self._config()["snp_count"]
        if spec["kind"] == "counts":
            shard = plan.ranges[spec["shard"]]
            for index, (combo_id, _f, _members) in enumerate(self._combos):
                if combo_id not in self._combo_counts:
                    self._combo_counts[combo_id] = np.zeros(
                        snp_count, dtype=np.int64
                    )
                self._combo_counts[combo_id][shard.start : shard.stop] = (
                    stats[index]
                )
                self._check_combo_size(combo_id, int(counts[index]))
            self._shard_counts_done.add(int(spec["shard"]))
            if (
                len(self._shard_counts_done) == plan.num_shards
                and self._member_sizes
                and self._combo_sizes.get("f0")
                != sum(self._member_sizes.values())
            ):
                raise ProtocolError(
                    "pooled shard size diverges from declared member sizes"
                )
        else:
            pairs = spec["pairs"]
            cache = self._combo_pair_moments
            for index, (combo_id, _f, _members) in enumerate(self._combos):
                size = int(counts[index])
                self._check_combo_size(combo_id, size)
                for pair, (mu_l, mu_r, mu_lr) in zip(
                    pairs, stats[index].tolist()
                ):
                    cache[(combo_id, *pair)] = ld.PairMoments(
                        mu_l, mu_r, mu_lr, mu_l, mu_r, count=size
                    )
            self._ld_cached.update(pairs)
            self._ld_pairs_fetched += len(pairs)
            self._shard_moments_done.add(int(spec["shard"]))
        self._drop_shard_task(task_id)

    def _ledger_own_leaf(
        self, spec: Dict[str, Any], leaf_digest: bytes, verify: bool
    ) -> None:
        """Record (or, verifying, compare) the leader's own leaf digest."""
        key = (spec["kind"], int(spec["shard"]), self.enclave_id)
        if not verify:
            self._shard_commitments[key] = leaf_digest
            return
        recorded = self._shard_commitments.get(key)
        if recorded is None or not hmac.compare_digest(recorded, leaf_digest):
            raise EquivocationError(  # lint: disable=R6 (shard labels are control-plane metadata)
                "leader leaf contribution diverged between the original "
                "and verification shard runs",
                stage=f"shard:{spec['kind']}:{spec['shard']}",
                reporter=self.enclave_id,
                peer=self.enclave_id,
            )

    def _verify_shard_root(
        self, spec: Dict[str, Any], stats: np.ndarray, counts: np.ndarray
    ) -> None:
        """Compare a verification re-run's root against installed state.

        Per-node commitments matched (``lead_ingest_shard_commitment``
        raised otherwise), so a divergent fold here cannot be pinned on
        a single leaf: it is reported unattributed and the study takes a
        classified abort instead of repairing around anyone.
        """
        mismatch = False
        if spec["kind"] == "counts":
            shard = self._shard_plan_required().ranges[spec["shard"]]
            for index, (combo_id, _f, _members) in enumerate(self._combos):
                installed = self._combo_counts.get(combo_id)
                if (
                    installed is None
                    or not np.array_equal(
                        installed[shard.start : shard.stop], stats[index]
                    )
                    or self._combo_sizes.get(combo_id) != int(counts[index])
                ):
                    mismatch = True
                    break
        else:
            cache = self._combo_pair_moments
            for index, (combo_id, _f, _members) in enumerate(self._combos):
                size = int(counts[index])
                for pair, (mu_l, mu_r, mu_lr) in zip(
                    spec["pairs"], stats[index].tolist()
                ):
                    expected = ld.PairMoments(
                        mu_l, mu_r, mu_lr, mu_l, mu_r, count=size
                    )
                    if cache.get((combo_id, *pair)) != expected:
                        mismatch = True
                        break
                if mismatch:
                    break
        if mismatch:
            raise EquivocationError(  # lint: disable=R6 (shard labels are control-plane metadata)
                "shard verification run diverged from the original fold "
                "with matching leaf commitments",
                stage=f"shard:{spec['kind']}:{spec['shard']}",
                reporter=self.enclave_id,
            )

    @ecall
    def lead_ingest_shard_commitment(
        self, record: bytes, sig: bytes, verify: bool = False
    ) -> None:
        """Ledger (or, verifying, compare) one node's leaf commitment.

        The original run of each shard task records every emitting
        node's signed leaf digest keyed ``(kind, shard, node)``.  The
        integrity layer's verification re-run replays the task with
        fresh task ids and passes ``verify=True``: a node whose leaf
        digest changed between the two runs *equivocated* — its module
        answered the same attested question two ways — and is named in
        the raised :class:`EquivocationError` so the supervisor can
        quarantine it and the protocol can repair the tree around it.
        """
        self._require_leader()
        self._echo_signer.verify(bytes(record), bytes(sig))
        entry = serialization.decode(bytes(record))
        if entry.get("study") != self._config()["study_id"]:
            raise ProtocolError("shard commitment for a different study")
        node = str(entry.get("node"))
        if node not in self._config()["member_ids"]:
            raise ProtocolError(f"shard commitment from unknown node {node!r}")
        kind = str(entry.get("kind"))
        if kind not in _SHARD_KINDS:
            raise ProtocolError(f"shard commitment of unknown kind {kind!r}")
        key = (kind, int(entry["shard"]), node)
        digest = bytes(entry["leaf"])
        if not verify:
            self._shard_commitments[key] = digest
            return
        recorded = self._shard_commitments.get(key)
        if recorded is None or not hmac.compare_digest(recorded, digest):
            raise EquivocationError(
                f"{node} committed to different leaf statistics across "
                f"the original and verification shard runs",
                stage=f"shard:{kind}:{entry['shard']}",
                reporter=self.enclave_id,
                peer=node,
            )

    @ecall
    def shard_progress(self) -> Dict[str, Any]:
        """Leader's shard-task completion state (failover resume point).

        Reports the explicit index sets of completed counts and moments
        tasks, so a restored orchestrator resumes each sharded phase
        from the last completed combine boundary instead of re-running
        the whole phase.
        """
        self._require_leader()
        return {
            "counts_done": sorted(self._shard_counts_done),
            "moments_done": sorted(self._shard_moments_done),
            "epoch": int(self._shard_epoch),
        }

    @ecall
    def shard_repair(self, epoch: int) -> None:
        """Adopt tree-repair generation ``epoch``: rebuild plan and tree.

        Broadcast by the orchestrator to every surviving enclave after a
        member loss mid-tree-round.  Every open shard task and partial
        accumulator is discarded (the interrupted task re-runs from leaf
        partials under the new layout) and the plan/tree are re-derived
        from the attested study parameters plus the epoch — so a
        Byzantine orchestrator calling this can only *re-shape* the
        deterministic layout (and desynchronised epochs fail closed as
        parent/child mismatches), never redefine ranges or re-root the
        tree.  Idempotent for the current epoch.
        """
        epoch = int(epoch)
        if epoch < 0:
            raise ProtocolError("shard repair epoch must be >= 0")
        self._shard_plan_required()
        if epoch == self._shard_epoch and not self._shard_tasks:
            return
        self._shard_epoch = epoch
        for task_id in list(self._shard_tasks):
            self._drop_shard_task(task_id)
        for task_id in list(self._shard_accum):
            self._drop_shard_accum(task_id)
        self._build_shard_layout()

    def _check_combo_size(self, combo_id: str, size: int) -> None:
        """Pooled sizes must agree across every shard of a combination."""
        known = self._combo_sizes.get(combo_id)
        if known is None:
            self._combo_sizes[combo_id] = size
        elif known != size:
            raise ProtocolError(  # lint: disable=R6 (combo pool sizes are aggregate control-plane metadata)
                f"combination {combo_id!r} pool size drifted across "
                f"shards ({known} vs {size})"
            )

    @ecall
    def shard_stats(self) -> Dict[str, int]:
        """Per-enclave shard counters (for the observability bridge)."""
        return dict(self._shard_counters)

    # ------------------------------------------------------------------
    # Broadcast-consistency echo + transcript attestation (integrity)
    # ------------------------------------------------------------------

    @staticmethod
    def _broadcast_digest(stage: str, snps: List[int]) -> bytes:
        """Canonical digest of a broadcast payload (what the echo signs)."""
        return hashlib.sha256(
            serialization.encode({"stage": stage, "snps": snps})
        ).digest()

    @ecall
    def export_broadcast_echo(self, stage: str) -> bytes:
        """Signed record of the broadcast digest this enclave holds.

        The record binds ``(study, stage, node, digest)`` under a MAC
        key every enclave derives from the study's data-authenticity
        root, so the untrusted hosts relaying echoes cannot forge or
        splice them.
        """
        config = self._config()
        if stage not in self._broadcast_digests:
            raise PhaseOrderError(f"no {stage!r} broadcast digest held yet")
        record = serialization.encode(
            {
                "study": config["study_id"],
                "stage": stage,
                "node": self.enclave_id,
                "digest": self._broadcast_digests[stage],
            }
        )
        return serialization.encode(
            {"record": record, "sig": self._echo_signer.sign(record)}
        )

    @ecall
    def verify_broadcast_echo(self, stage: str, peer: str, frame: bytes) -> None:
        """Check a peer's echoed broadcast digest against our own.

        Raises :class:`~repro.errors.EquivocationError` when the digests
        differ — the broadcaster sent this peer different bytes than it
        sent us (or vice versa); one honest pair of witnesses suffices
        to expose it.
        """
        envelope = serialization.decode(frame)
        record_raw = bytes(envelope["record"])
        self._echo_signer.verify(record_raw, bytes(envelope["sig"]))
        record = serialization.decode(record_raw)
        config = self._config()
        if (
            record["study"] != config["study_id"]
            or record["stage"] != stage
            or record["node"] != peer
        ):
            raise ProtocolError("echo record does not match its context")
        if stage not in self._broadcast_digests:
            raise PhaseOrderError(f"no {stage!r} broadcast digest held yet")
        if not hmac.compare_digest(
            bytes(record["digest"]), self._broadcast_digests[stage]
        ):
            raise EquivocationError(
                f"stage {stage!r} broadcast digest from {peer} diverges "
                f"from the one {self.enclave_id} holds",
                stage=stage,
                reporter=self.enclave_id,
                peer=peer,
            )

    @ecall
    def answer_transcript(self, frame: bytes) -> bytes:
        """Attest this member's channel transcript to the leader.

        The leader's request carries its (send, recv) transcript digests
        taken before protecting the request; with no frame in flight
        they must mirror ours exactly.  A mismatch means the two
        endpoints processed different frame sequences — equivocation or
        splicing below the AEAD layer — and fails closed.
        """
        leader = self._config()["leader_id"]
        channel = self._channel(leader)
        sent_snap, recv_snap = channel.transcript_snapshot()
        request = self._open(leader, "transcript", frame)
        stage = str(request["stage"])
        if not hmac.compare_digest(bytes(request["send"]), recv_snap):
            raise TranscriptDivergenceError(  # lint: disable=R6 (stage names are control-plane metadata)
                f"leader send transcript diverges from what "
                f"{self.enclave_id} received (stage {stage!r})"
            )
        if not hmac.compare_digest(bytes(request["recv"]), sent_snap):
            raise TranscriptDivergenceError(  # lint: disable=R6 (stage names are control-plane metadata)
                f"leader recv transcript diverges from what "
                f"{self.enclave_id} sent (stage {stage!r})"
            )
        return self._protect(
            leader,
            "transcript",
            {"stage": stage, "send": sent_snap, "recv": recv_snap},
        )

    @ecall
    def lead_verify_transcripts(self, stage: str, ocall: OcallExchange) -> None:
        """Cross-check channel transcripts with every member.

        Run at phase boundaries: each member attests the digests of the
        frame sequence it sent and received on its leader channel, and
        the leader matches them against its own mirror-image digests.
        Snapshots are taken immediately before protecting the request
        (leader), before opening it (member), and before opening the
        reply (leader), so each comparison happens at a quiescent point
        of the channel.
        """
        self._require_leader()
        sent_before: Dict[str, bytes] = {}
        frames: Dict[str, bytes] = {}
        for member in self._other_members():
            send_digest, recv_digest = self._channel(
                member
            ).transcript_snapshot()
            sent_before[member] = send_digest
            frames[member] = self._protect(
                member,
                "transcript",
                {"stage": stage, "send": send_digest, "recv": recv_digest},
            )
        # The round kind embeds the stage: transcript rounds recur every
        # phase, and a kind unique per round lets the reply router
        # reject cross-round replays by tag alone.
        responses = ocall(f"transcript:{stage}", frames)
        for member in self._other_members():
            if member not in responses:
                raise ProtocolError(
                    f"no transcript attestation from {member}"
                )
            _, recv_before_reply = self._channel(member).transcript_snapshot()
            try:
                answer = self._open(member, "transcript", responses[member])
            except ChannelError as exc:
                # The host delivered something that fails channel
                # authentication or ordering *as this round's
                # attestation* — replayed or spliced reply traffic.
                raise TranscriptDivergenceError(
                    f"transcript attestation from {member} failed "
                    f"channel verification (stage {stage!r})"
                ) from exc
            if answer.get("stage") != stage:
                raise ProtocolError(
                    f"transcript attestation from {member} is for the "
                    f"wrong stage"
                )
            if not hmac.compare_digest(
                bytes(answer["send"]), recv_before_reply
            ):
                raise TranscriptDivergenceError(
                    f"{member} send transcript diverges from what the "
                    f"leader received (stage {stage!r})"
                )
            if not hmac.compare_digest(
                bytes(answer["recv"]), sent_before[member]
            ):
                raise TranscriptDivergenceError(
                    f"{member} recv transcript diverges from what the "
                    f"leader sent (stage {stage!r})"
                )

    # -- Phase 2: LD -----------------------------------------------------------

    def _reference_moments(
        self, ref_reader: ColumnReader, pair: Tuple[int, int]
    ) -> ld.PairMoments:
        if pair not in self._reference_pair_moments:
            self._reference_moments_batch(ref_reader, [pair])
        return self._reference_pair_moments[pair]

    def _reference_moments_batch(
        self, ref_reader: ColumnReader, pairs: Sequence[Tuple[int, int]]
    ) -> None:
        """Fill the reference moment cache for many pairs at once."""
        missing = [p for p in pairs if p not in self._reference_pair_moments]
        if not missing:
            return
        pair_array = np.asarray(missing, dtype=np.int64)
        unique_columns, inverse = np.unique(pair_array, return_inverse=True)
        inverse = inverse.reshape(pair_array.shape)
        gathered = ref_reader.columns(unique_columns.tolist())
        moments = ld.pair_moments_kernel(gathered, inverse)
        count = ref_reader.num_rows
        cache = self._reference_pair_moments
        for pair, row in zip(missing, moments.tolist()):
            cache[pair] = ld.PairMoments(*row, count=count)

    def _fetch_moments(
        self,
        pairs: List[Tuple[int, int]],
        store: SealedColumnStore,
        ref_reader: ColumnReader,
        ocall: OcallExchange,
    ) -> None:
        """One request/response round for pair moments not yet cached."""
        members = self._other_members()
        missing = [pair for pair in pairs if pair not in self._ld_cached]
        self._ld_pairs_fetched += len(missing)
        if not missing:
            return
        self._lr_request_counter += 1
        request_id = f"ld-{self._lr_request_counter}"
        payload = {
            "req_id": request_id,
            "pairs": np.asarray(missing, dtype=np.int64),
        }
        requests = {
            member: self._protect(member, "ld", payload) for member in members
        }
        responses = ocall("ld", requests)
        for member in members:
            answer = self._open(member, "ld", responses[member])
            if answer["req_id"] != request_id:
                raise ProtocolError(f"stale LD response from {member}")
            moments = np.asarray(answer["moments"], dtype=np.int64)
            if moments.shape != (len(missing), 5):
                raise ProtocolError(f"malformed LD response from {member}")
            size = self._member_sizes[member]
            # Untrusted peer input: validate the whole batch vectorised.
            if moments.min(initial=0) < 0 or moments.max(initial=0) > size:
                raise ProtocolError(
                    f"LD moments from {member} are inconsistent with its "
                    f"declared population size"
                )
            member_cache = self._member_pair_moments
            for pair, values in zip(missing, moments.tolist()):
                member_cache[(member, *pair)] = ld.PairMoments(
                    *values, count=size
                )
        local = self._local_moments(store, missing)
        local_rows = store.num_rows
        local_cache = self._local_pair_moments
        for pair, values in zip(missing, local.tolist()):
            local_cache[pair] = ld.PairMoments(*values, count=local_rows)
        self._reference_moments_batch(ref_reader, missing)
        self._ld_cached.update(missing)

    def _combo_moments(
        self,
        combo_id: str,
        combo_members: Tuple[str, ...],
        pair: Tuple[int, int],
        ref_reader: ColumnReader,
    ) -> ld.PairMoments:
        """Pooled moments of a pair for one combination (case + reference).

        Sharded runs install the case-side pool per combination during
        tree aggregation; the per-member sum below only runs for pairs
        the tree prefetch did not cover (lookahead misses) and for the
        flat (unsharded) path.
        """
        self._ld_pairs_requested += 1
        total = self._reference_moments(ref_reader, pair)
        pooled = self._combo_pair_moments.get((combo_id, *pair))
        if pooled is not None:
            return total + pooled
        for member in combo_members:
            if member == self.enclave_id:
                total = total + self._local_pair_moments[pair]
            else:
                total = total + self._member_pair_moments[(member, *pair)]
        return total

    @ecall
    def lead_run_ld(
        self,
        store: SealedColumnStore,
        ref_store: SealedColumnStore,
        ocall: OcallExchange,
    ) -> List[int]:
        """Phase 2: greedy adjacent-pair LD pruning per combination."""
        self._require_leader()
        if "prime" not in self._retained:
            raise PhaseOrderError("MAF phase has not run")
        config = self._config()
        l_prime = self._retained["prime"]
        cutoff = config["ld_cutoff"]
        survivor_sets: List[set] = []
        with ColumnReader(self, ref_store) as ref_reader:
            # One prefetch round covering the union of every walk's
            # sliding window: all combinations traverse the intersected
            # list and the plain track the un-intersected one, so after
            # this round the per-walk window fetches below are fully
            # cached and issue no further rounds (only rare lookahead
            # misses still go to the members).
            union_window = dict.fromkeys(self._window_pairs(l_prime))
            if len(self._combos) > 1:
                union_window.update(
                    dict.fromkeys(
                        self._window_pairs(self._plain_retained["prime"])
                    )
                )
            self._fetch_moments(
                list(union_window), store, ref_reader, ocall
            )
            for combo_id, _f, combo_members in self._combos:
                survivor_sets.append(
                    set(
                        self._ld_greedy(
                            combo_id,
                            combo_members,
                            l_prime,
                            cutoff,
                            store,
                            ref_reader,
                            ocall,
                        )
                    )
                )
            if len(self._combos) > 1:
                # Plain track: the f0 walk over the un-intersected list.
                full_members = self._combos[0][2]
                self._plain_retained["double_prime"] = self._ld_greedy(
                    "f0",
                    full_members,
                    self._plain_retained["prime"],
                    cutoff,
                    store,
                    ref_reader,
                    ocall,
                )
        retained = sorted(set.intersection(*survivor_sets))
        self._retained["double_prime"] = retained
        if len(self._combos) == 1:
            self._plain_retained["double_prime"] = list(retained)
        return list(retained)

    def _window_pairs(self, l_prime: List[int]) -> List[Tuple[int, int]]:
        """The sliding-window pair list a greedy walk over ``l_prime`` uses.

        Built by the vectorised :func:`repro.stats.ld.window_pairs`
        kernel and memoized per SNP list: every combination walks the
        same intersected list, so without the memo the same pair list
        was rebuilt ``C(G, G-f)`` times per study.
        """
        key = np.asarray(l_prime, dtype=np.int64).tobytes()
        pairs = self._window_pairs_cache.get(key)
        if pairs is None:
            if len(l_prime) < 2:
                pairs = []
            else:
                arr = ld.window_pairs(l_prime, _LD_WINDOW)
                pairs = list(zip(arr[:, 0].tolist(), arr[:, 1].tolist()))
            self._window_pairs_cache[key] = pairs
        return pairs

    def _ld_greedy(
        self,
        combo_id: str,
        combo_members: Tuple[str, ...],
        l_prime: List[int],
        cutoff: float,
        store: SealedColumnStore,
        ref_reader: ColumnReader,
        ocall: OcallExchange,
    ) -> List[int]:
        """Run the shared LD walk for one combination.

        The decision logic is :func:`repro.core.pipeline.ld_prune` —
        identical to the baselines'; only the moment *source* differs:
        here, missing pair moments are fetched from member enclaves in
        speculative batches (same decisions, fewer rounds than strictly
        per-pair exchange).
        """
        if not l_prime:
            return []
        if len(l_prime) == 1:
            return list(l_prime)
        # The chi-squared ranking that breaks dependent pairs is the
        # *study's* ranking (paper: getMostRanked(l, l+1, s)) — utility
        # ordering is a property of the study, computed over the full
        # federation, while the privacy decisions below remain
        # per-combination.
        ranking = self._ranking("f0")
        # Prefetch a sliding window of pairs in a single round: the walk
        # only ever compares SNPs whose positions are close unless one
        # candidate outlives a whole LD block, so a small window covers
        # almost every comparison and stragglers fall back to on-demand
        # lookahead rounds below.  (When ``lead_run_ld`` already issued
        # its union prefetch this finds everything cached and costs no
        # round at all.)
        self._fetch_moments(self._window_pairs(l_prime), store, ref_reader, ocall)

        def get_moments(left: int, right: int, position: int) -> ld.PairMoments:
            pair = (left, right)
            if pair not in self._ld_cached:
                lookahead = [
                    (left, l_prime[j])
                    for j in range(
                        position, min(position + _LD_LOOKAHEAD, len(l_prime))
                    )
                ]
                self._fetch_moments(lookahead, store, ref_reader, ocall)
            return self._combo_moments(combo_id, combo_members, pair, ref_reader)

        return pipeline.ld_prune(l_prime, ranking, get_moments, cutoff)

    # -- Phase 3: LR-test ------------------------------------------------------

    @ecall
    def lead_run_lr(
        self,
        store: SealedColumnStore,
        ref_store: SealedColumnStore,
        ocall: OcallExchange,
    ) -> List[int]:
        """Phase 3: distributed LR-test, intersected across combinations.

        Every combination — and, with collusion tolerance, the plain
        (collusion-oblivious) Table 5 baseline — is evaluated from a
        *single* batched request/response round: the per-combination
        protocol's ``O(C(G, G-f))`` rounds collapse to one, while each
        merged matrix stays byte-identical to what the per-combination
        exchange produced (members compute the same ``lr_matrix`` over
        the same columns and frequency vectors, merged in the same
        member order).
        """
        self._require_leader()
        if "double_prime" not in self._retained:
            raise PhaseOrderError("LD phase has not run")
        config = self._config()
        columns = self._retained["double_prime"]
        alpha, beta = config["alpha"], config["beta"]
        plain_track = len(self._combos) > 1
        plain_columns = (
            self._plain_retained.get("double_prime", []) if plain_track else []
        )

        def entry_freqs(combo_id: str, cols: List[int]):
            case = (
                self._combo_counts[combo_id][cols].astype(np.float64)
                / self._combo_sizes[combo_id]
            )
            ref = (
                self._reference_counts[cols].astype(np.float64)
                / self._reference_rows
            )
            return case, ref

        # Distinct column lists are shipped once per member and
        # referenced by set id from each entry; with collusion tolerance
        # there are at most two (the intersected list and the
        # un-intersected plain list).
        column_sets: Dict[str, List[int]] = {}
        entries: List[Dict[str, Any]] = []
        if columns:
            column_sets["main"] = [int(c) for c in columns]
            for combo_id, _f, combo_members in self._combos:
                case_freqs, ref_freqs = entry_freqs(combo_id, columns)
                entries.append(
                    {
                        "rid": combo_id,
                        "set": "main",
                        "members": combo_members,
                        "case_freqs": case_freqs,
                        "ref_freqs": ref_freqs,
                    }
                )
        if plain_track and plain_columns:
            column_sets["plain"] = [int(c) for c in plain_columns]
            case_freqs, ref_freqs = entry_freqs("f0", plain_columns)
            entries.append(
                {
                    "rid": "plain",
                    "set": "plain",
                    "members": self._combos[0][2],
                    "case_freqs": case_freqs,
                    "ref_freqs": ref_freqs,
                }
            )
        merged = self._batched_lr_matrices(
            store, ref_store, column_sets, entries, ocall
        )

        if columns:
            order = pipeline.lr_ranking_order(columns, self._ranking("f0"))
            full_case_matrix: Optional[np.ndarray] = None
            full_ref_matrix: Optional[np.ndarray] = None
            survivor_sets: List[set] = []
            for combo_id, _f, _members in self._combos:
                case_matrix, ref_matrix = merged[combo_id]
                selection = lr_test.select_safe_subset(
                    case_matrix, ref_matrix, order, alpha=alpha, beta=beta
                )
                safe = tuple(
                    sorted(columns[c] for c in selection.selected_columns)
                )
                self._combo_safe[combo_id] = safe
                survivor_sets.append(set(safe))
                if combo_id == "f0":
                    full_case_matrix = case_matrix
                    full_ref_matrix = ref_matrix
            safe_final = sorted(set.intersection(*survivor_sets))
        else:
            full_case_matrix = full_ref_matrix = None
            safe_final = []
        self._retained["safe"] = safe_final
        # Residual power of the actually-released set under the full data.
        if safe_final and full_case_matrix is not None:
            position = {snp: i for i, snp in enumerate(columns)}
            positions = [position[s] for s in safe_final]
            self._release_power = lr_test.empirical_power(
                lr_test.lr_scores(full_case_matrix, positions),
                lr_test.lr_scores(full_ref_matrix, positions),
                alpha,
            )
        else:
            self._release_power = 0.0
        if not plain_track:
            self._plain_retained["safe"] = list(safe_final)
        elif "plain" in merged:
            case_matrix, ref_matrix = merged["plain"]
            order = pipeline.lr_ranking_order(
                plain_columns, self._ranking("f0")
            )
            selection = lr_test.select_safe_subset(
                case_matrix, ref_matrix, order, alpha=alpha, beta=beta
            )
            self._plain_retained["safe"] = sorted(
                plain_columns[c] for c in selection.selected_columns
            )
        else:
            self._plain_retained["safe"] = []
        self.meter.release_buffer("lr-merged")
        return list(safe_final)

    def _batched_lr_matrices(
        self,
        store: SealedColumnStore,
        ref_store: SealedColumnStore,
        column_sets: Dict[str, List[int]],
        entries: List[Dict[str, Any]],
        ocall: OcallExchange,
    ) -> Dict[str, Tuple[np.ndarray, np.ndarray]]:
        """One batched round producing every entry's merged LR matrices.

        Each member receives one request carrying the column sets and
        the (rid, frequency-vector) entries it participates in, and
        answers with all of its local matrices in one frame.  Returns
        ``{rid: (case_matrix, ref_matrix)}`` with rows merged in the
        entry's (sorted) member order — the same layout the
        per-combination protocol produced.
        """
        if not entries:
            return {}
        self._lr_request_counter += 1
        request_id = f"lr-{self._lr_request_counter}"
        member_entries: Dict[str, List[Dict[str, Any]]] = {}
        for entry in entries:
            for member in entry["members"]:
                if member != self.enclave_id:
                    member_entries.setdefault(member, []).append(entry)
        requests = {}
        for member, owned in member_entries.items():
            sets_used = sorted({e["set"] for e in owned})
            payload = {
                "req_id": request_id,
                "column_sets": {s: column_sets[s] for s in sets_used},
                "requests": [
                    {
                        "rid": e["rid"],
                        "set": e["set"],
                        "case_freqs": e["case_freqs"],
                        "ref_freqs": e["ref_freqs"],
                    }
                    for e in owned
                ],
            }
            requests[member] = self._protect(member, "lr", payload)
        responses = ocall("lr", requests) if requests else {}
        answers: Dict[str, Dict[str, Any]] = {}
        for member in sorted(member_entries):
            if member not in responses:
                raise ProtocolError(f"no LR answer received from {member}")
            answer = self._open(member, "lr", responses[member])
            if answer["req_id"] != request_id:
                raise ProtocolError(f"stale LR response from {member}")
            answers[member] = answer["matrices"]
        # Gather each distinct column set once from the leader's own and
        # the reference store (instead of once per combination).
        leader_sets = sorted(
            {e["set"] for e in entries if self.enclave_id in e["members"]}
        )
        local_genotypes: Dict[str, np.ndarray] = {}
        if leader_sets:
            with ColumnReader(self, store) as reader:
                for set_id in leader_sets:
                    local_genotypes[set_id] = reader.columns(
                        list(column_sets[set_id])
                    )
        ref_genotypes: Dict[str, np.ndarray] = {}
        with ColumnReader(self, ref_store) as ref_reader:
            for set_id in sorted({e["set"] for e in entries}):
                ref_genotypes[set_id] = ref_reader.columns(
                    list(column_sets[set_id])
                )
        merged: Dict[str, Tuple[np.ndarray, np.ndarray]] = {}
        for entry in entries:
            rid, set_id = entry["rid"], entry["set"]
            width = len(column_sets[set_id])
            parts: List[np.ndarray] = []
            for member in entry["members"]:  # sorted order fixes row layout
                if member == self.enclave_id:
                    genotypes = local_genotypes[set_id]
                    label = f"lr-local/{request_id}/{rid}"
                    self.meter.register_buffer(label, genotypes.nbytes * 9)
                    try:
                        parts.append(
                            lr_test.lr_matrix(
                                genotypes,
                                entry["case_freqs"],
                                entry["ref_freqs"],
                            )
                        )
                    finally:
                        self.meter.release_buffer(label)
                    continue
                member_matrices = answers[member]
                if rid not in member_matrices:
                    raise ProtocolError(
                        f"LR answer from {member} misses entry {rid!r}"
                    )
                matrix = np.asarray(member_matrices[rid], dtype=np.float64)
                expected_shape = (self._member_sizes[member], width)
                if matrix.shape != expected_shape:
                    raise ProtocolError(  # lint: disable=R6 (matrix shapes are dimensional metadata)
                        f"LR matrix from {member} has shape {matrix.shape}, "
                        f"expected {expected_shape}"
                    )
                parts.append(matrix)
            case_matrix = np.vstack(parts)
            ref_matrix = lr_test.lr_matrix(
                ref_genotypes[set_id], entry["case_freqs"], entry["ref_freqs"]
            )
            self.meter.register_buffer(
                "lr-merged", case_matrix.nbytes + ref_matrix.nbytes
            )
            merged[rid] = (case_matrix, ref_matrix)
        return merged

    # ------------------------------------------------------------------
    # Results and introspection
    # ------------------------------------------------------------------

    @ecall
    def lead_exchange_stats(self) -> Dict[str, int]:
        """Moment-exchange cache counters (for the observability bridge).

        ``ld_pairs_requested`` counts pooled pair-moment lookups across
        every combination's walk; ``ld_pairs_fetched`` counts pairs that
        actually crossed the wire.  Their gap is work the moment caches
        (and the union window prefetch) absorbed.
        """
        self._require_leader()
        return {
            "ld_pairs_requested": self._ld_pairs_requested,
            "ld_pairs_fetched": self._ld_pairs_fetched,
        }

    @ecall
    def lead_combo_outcomes(self) -> List[Dict[str, Any]]:
        """Per-combination safe sets (for the Table 5 analysis)."""
        self._require_leader()
        return [
            {
                "combo_id": combo_id,
                "f": f,
                "members": list(members),
                "safe": list(self._combo_safe.get(combo_id, ())),
            }
            for combo_id, f, members in self._combos
        ]

    @ecall
    def lead_plain_safe(self) -> List[int]:
        """The plain (collusion-oblivious) release — Table 5's baseline."""
        self._require_leader()
        if "safe" not in self._plain_retained:
            raise PhaseOrderError("LR phase has not run")
        return list(self._plain_retained["safe"])

    @ecall
    def lead_release_power(self) -> float:
        self._require_leader()
        return self._release_power

    @ecall
    def lead_release_statistics(self) -> Dict[str, Any]:
        """Chi-squared release statistics over the final safe set."""
        self._require_leader()
        if "safe" not in self._retained:
            raise PhaseOrderError("LR phase has not run")
        safe = self._retained["safe"]
        counts = self._combo_counts["f0"][safe]
        n_case = self._combo_sizes["f0"]
        ref_counts = self._reference_counts[safe]
        statistic = chisq.pearson_chi_square(
            counts, ref_counts, n_case, self._reference_rows
        )
        return {
            "snps": list(safe),
            "chi2": statistic,
            "pvalues": chisq.chi_square_pvalues(statistic),
            "case_freqs": counts.astype(np.float64) / n_case,
            "ref_freqs": ref_counts.astype(np.float64) / self._reference_rows,
            "n_case": n_case,
            "n_reference": self._reference_rows,
        }

    @ecall
    def export_audit_log(self) -> List[Dict[str, Any]]:
        """Outbound-payload audit trail (kind, peer, size, genotype rows)."""
        return [dict(entry) for entry in self._audit_log]

    # ------------------------------------------------------------------
    # Sealed checkpoints (leader crash recovery)
    # ------------------------------------------------------------------
    #
    # The paper's TEEs use data sealing "to store data persistently
    # outside the TEE".  The leader's aggregation state between phases
    # is exactly the data worth persisting: if the leader machine
    # restarts mid-study, a fresh enclave instance (same trusted code on
    # the same platform, hence the same sealing key) can unseal the
    # checkpoint and continue, after re-attesting channels with the
    # members.  Channel keys are deliberately NOT checkpointed — session
    # keys die with the enclave and are re-agreed on recovery.

    def _checkpoint_payload(self) -> Dict[str, Any]:
        # Sizes and counts are keyed independently: sharded studies
        # collect declared sizes without per-member count vectors (the
        # pooled counts arrive through the tree), so keying sizes off
        # the counts dict would silently drop them from the blob.
        members = sorted(self._member_sizes)
        count_ids = sorted(self._member_counts)
        moment_keys = sorted(self._member_pair_moments)
        local_keys = sorted(self._local_pair_moments)
        ref_keys = sorted(self._reference_pair_moments)
        combo_moment_keys = sorted(self._combo_pair_moments)

        def pack_moments(keys, lookup):
            rows = [
                [m.mu_l, m.mu_r, m.mu_lr, m.mu_l2, m.mu_r2, m.count]
                for m in (lookup[k] for k in keys)
            ]
            return np.asarray(rows, dtype=np.int64).reshape(len(keys), 6)

        return {
            "study": self._study,
            "member_ids": members,
            "count_ids": count_ids,
            "member_counts": [self._member_counts[m] for m in count_ids],
            "member_sizes": [self._member_sizes[m] for m in members],
            "reference_counts": self._reference_counts,
            "reference_rows": self._reference_rows,
            "retained": {k: list(v) for k, v in self._retained.items()},
            "plain_retained": {
                k: list(v) for k, v in self._plain_retained.items()
            },
            "combo_ids": sorted(self._combo_counts),
            "combo_counts": [
                self._combo_counts[c] for c in sorted(self._combo_counts)
            ],
            "combo_sizes": [
                self._combo_sizes[c] for c in sorted(self._combo_counts)
            ],
            "combo_safe": {
                k: list(v) for k, v in sorted(self._combo_safe.items())
            },
            "release_power": float(self._release_power),
            "moment_keys": [list(k) for k in moment_keys],
            "moment_values": pack_moments(moment_keys, self._member_pair_moments),
            "local_keys": [list(k) for k in local_keys],
            "local_values": pack_moments(local_keys, self._local_pair_moments),
            "ref_keys": [list(k) for k in ref_keys],
            "ref_values": pack_moments(ref_keys, self._reference_pair_moments),
            "combo_moment_keys": [list(k) for k in combo_moment_keys],
            "combo_moment_values": pack_moments(
                combo_moment_keys, self._combo_pair_moments
            ),
            "shard_counts_done": sorted(self._shard_counts_done),
            "shard_moments_done": sorted(self._shard_moments_done),
            "shard_epoch": int(self._shard_epoch),
            "shard_commitment_keys": [
                list(k) for k in sorted(self._shard_commitments)
            ],
            "shard_commitment_values": [
                self._shard_commitments[k]
                for k in sorted(self._shard_commitments)
            ],
            "request_counter": self._lr_request_counter,
        }

    @ecall
    def checkpoint_state(self) -> SealedBlob:
        """Seal the leader's verification state for untrusted storage.

        When a rollback counter is installed, each checkpoint advances
        the platform's monotonic counter and binds the resulting epoch
        into the sealed blob's associated data — so a host cannot later
        swap in an older (validly sealed) checkpoint unnoticed.
        """
        self._require_leader()
        raw = serialization.encode(self._checkpoint_payload())
        epoch = 0
        if self._rollback_counter is not None:
            epoch = self._rollback_counter.advance()
        return seal(
            self,
            raw,
            label="leader-checkpoint",
            context=epoch.to_bytes(8, "big"),
        )

    @ecall
    def restore_state(self, blob: SealedBlob) -> None:
        """Restore a sealed checkpoint into this (fresh) enclave.

        Only an enclave with the same measurement on the same platform
        can unseal the blob; a tampered or foreign checkpoint fails.
        With a rollback counter installed, a blob sealed at an earlier
        epoch than the platform counter's current value is rejected as
        stale *before* any state is applied.
        """
        if self._rollback_counter is not None and blob.context:
            epoch = int.from_bytes(blob.context, "big")
            if epoch < self._rollback_counter.value:
                raise StaleCheckpointError(
                    f"checkpoint epoch {epoch} is behind the platform "
                    f"rollback counter ({self._rollback_counter.value}); "
                    f"refusing rollback"
                )
        raw = unseal(self, blob)
        state = serialization.decode(raw)
        self._study = state["study"]
        self._combos = self._build_combinations(
            self._study["member_ids"], list(self._study["f_values"])
        )
        members = state["member_ids"]
        count_ids = state.get("count_ids", members)
        self._member_counts = {
            m: np.asarray(c, dtype=np.int64)
            for m, c in zip(count_ids, state["member_counts"])
        }
        self._member_sizes = {
            m: int(s) for m, s in zip(members, state["member_sizes"])
        }
        self._reference_counts = (
            None
            if state["reference_counts"] is None
            else np.asarray(state["reference_counts"], dtype=np.int64)
        )
        self._reference_rows = int(state["reference_rows"])
        self._retained = {
            k: [int(s) for s in v] for k, v in state["retained"].items()
        }
        self._plain_retained = {
            k: [int(s) for s in v] for k, v in state["plain_retained"].items()
        }
        # np.array (not asarray): the decoder hands back read-only
        # buffer views, and sharded count folds write into slices.
        self._combo_counts = {
            c: np.array(v, dtype=np.int64)
            for c, v in zip(state["combo_ids"], state["combo_counts"])
        }
        self._combo_sizes = {
            c: int(s) for c, s in zip(state["combo_ids"], state["combo_sizes"])
        }
        # Post-LR collusion outcomes: present only in checkpoints taken
        # after the LR phase (``get`` keeps older blobs restorable).
        self._combo_safe = {
            k: tuple(int(s) for s in v)
            for k, v in state.get("combo_safe", {}).items()
        }
        self._release_power = float(state.get("release_power", 0.0))
        self._ranking_cache = {}

        def unpack(keys, values, make_key):
            values = np.asarray(values, dtype=np.int64).reshape(len(keys), 6)
            return {
                make_key(key): ld.PairMoments(*row[:5], count=row[5])
                for key, row in zip(keys, values.tolist())
            }

        self._member_pair_moments = unpack(
            state["moment_keys"],
            state["moment_values"],
            lambda k: (str(k[0]), int(k[1]), int(k[2])),
        )
        self._local_pair_moments = unpack(
            state["local_keys"],
            state["local_values"],
            lambda k: (int(k[0]), int(k[1])),
        )
        self._reference_pair_moments = unpack(
            state["ref_keys"],
            state["ref_values"],
            lambda k: (int(k[0]), int(k[1])),
        )
        self._combo_pair_moments = unpack(
            state.get("combo_moment_keys", []),
            state.get(
                "combo_moment_values", np.zeros((0, 6), dtype=np.int64)
            ),
            lambda k: (str(k[0]), int(k[1]), int(k[2])),
        )
        counts_done = state.get("shard_counts_done", [])
        # Older checkpoints carried an in-order completion count; newer
        # ones carry the explicit shard-index list.
        if isinstance(counts_done, int):
            counts_done = range(counts_done)
        self._shard_counts_done = {int(s) for s in counts_done}
        self._shard_moments_done = {
            int(s) for s in state.get("shard_moments_done", [])
        }
        # The repair epoch must land before the layout is re-derived so
        # a restored leader rebuilds the *repaired* plan and tree.
        self._shard_epoch = int(state.get("shard_epoch", 0))
        self._shard_commitments = {
            (str(k[0]), int(k[1]), str(k[2])): bytes(v)
            for k, v in zip(
                state.get("shard_commitment_keys", []),
                state.get("shard_commitment_values", []),
            )
        }
        self._build_shard_layout()
        members_set = self._other_members()
        self._ld_cached = {
            pair
            for pair in self._local_pair_moments
            if all((m, *pair) in self._member_pair_moments for m in members_set)
        }
        # Pairs whose pooled moments the combine tree installed for every
        # combination are fully served from the combo cache.
        if self._combo_pair_moments:
            combo_ids = {combo_id for combo_id, _f, _m in self._combos}
            coverage: Dict[Tuple[int, int], set] = {}
            for combo_id, left, right in self._combo_pair_moments:
                coverage.setdefault((left, right), set()).add(combo_id)
            self._ld_cached.update(
                pair for pair, seen in coverage.items() if seen == combo_ids
            )
        self._lr_request_counter = int(state["request_counter"])
