"""Trusted-module unit tests (GenDPREnclave internals)."""

from __future__ import annotations

import math

import pytest

from repro.core.enclave_logic import GenDPREnclave
from repro.errors import PhaseOrderError, ProtocolError, TEEError

_KEY = bytes(range(32))


def _enclave(enclave_id="gdo-0"):
    return GenDPREnclave(
        platform_key=_KEY, enclave_id=enclave_id, data_auth_key=bytes(32)
    )


def _params(**overrides):
    params = {
        "study_id": "s",
        "snp_count": 10,
        "maf_cutoff": 0.05,
        "ld_cutoff": 1e-5,
        "alpha": 0.1,
        "beta": 0.9,
        "member_ids": ["gdo-0", "gdo-1", "gdo-2"],
        "leader_id": "gdo-1",
        "f_values": [],
    }
    params.update(overrides)
    return params


class TestConfigure:
    def test_missing_keys_rejected(self):
        enclave = _enclave()
        with pytest.raises(ProtocolError, match="misses"):
            enclave.ecall("configure", {"study_id": "s"})

    def test_leader_must_be_member(self):
        enclave = _enclave()
        with pytest.raises(ProtocolError):
            enclave.ecall("configure", _params(leader_id="stranger"))

    def test_own_id_must_be_member(self):
        enclave = _enclave("outsider")
        with pytest.raises(ProtocolError):
            enclave.ecall("configure", _params())

    def test_unconfigured_enclave_refuses_work(self):
        enclave = _enclave()
        with pytest.raises(PhaseOrderError):
            enclave.ecall("received_retained", "prime")

    def test_is_leader(self):
        leader = _enclave("gdo-1")
        leader.ecall("configure", _params())
        assert leader.is_leader
        member = _enclave("gdo-0")
        member.ecall("configure", _params())
        assert not member.is_leader


class TestCombinationBuilder:
    def test_f0_always_first(self):
        combos = GenDPREnclave._build_combinations(["a", "b", "c"], [])
        assert combos == [("f0", 0, ("a", "b", "c"))]

    def test_static_f(self):
        combos = GenDPREnclave._build_combinations(["a", "b", "c"], [1])
        assert len(combos) == 1 + math.comb(3, 2)
        sizes = {len(members) for _, f, members in combos if f == 1}
        assert sizes == {2}

    def test_conservative(self):
        combos = GenDPREnclave._build_combinations(["a", "b", "c", "d"], [1, 2, 3])
        expected = 1 + math.comb(4, 3) + math.comb(4, 2) + math.comb(4, 1)
        assert len(combos) == expected
        ids = [combo_id for combo_id, _, _ in combos]
        assert len(set(ids)) == len(ids)  # unique identifiers

    def test_duplicate_f_collapsed(self):
        combos = GenDPREnclave._build_combinations(["a", "b"], [1, 1])
        assert len(combos) == 1 + 2

    def test_infeasible_f_rejected(self):
        with pytest.raises(ProtocolError):
            GenDPREnclave._build_combinations(["a", "b"], [2])

    def test_f_zero_in_list_ignored(self):
        combos = GenDPREnclave._build_combinations(["a", "b"], [0])
        assert len(combos) == 1


class TestChannelInstallation:
    def test_foreign_endpoint_rejected(self):
        from repro.tee.channel import ChannelEndpoint

        enclave = _enclave()
        endpoint = ChannelEndpoint("someone-else", "gdo-0", bytes(32))
        with pytest.raises(TEEError):
            enclave.install_channel(endpoint)

    def test_missing_channel_surfaces_protocol_error(self):
        enclave = _enclave("gdo-1")
        enclave.ecall("configure", _params())
        with pytest.raises(ProtocolError, match="attested channel"):
            enclave._channel("gdo-0")


class TestLoadValidation:
    def test_reference_size_mismatch(self):
        enclave = _enclave("gdo-1")
        enclave.ecall("configure", _params())
        with pytest.raises(ProtocolError):
            enclave.ecall("load_reference_matrix", bytes(25), 3)

    def test_reference_non_binary_rejected(self):
        enclave = _enclave("gdo-1")
        enclave.ecall("configure", _params())
        with pytest.raises(ProtocolError):
            enclave.ecall("load_reference_matrix", bytes([7] * 20), 2)

    def test_unknown_dataset_container_rejected(self):
        enclave = _enclave("gdo-1")
        enclave.ecall("configure", _params())
        with pytest.raises(ProtocolError):
            enclave.ecall("load_local_dataset", object())


class TestTrustedStateDeclaration:
    def test_channels_and_keys_declared_trusted(self):
        names = GenDPREnclave.trusted_state_names()
        assert "_channels" in names
        assert "_platform_key" in names
        assert "_data_signer" in names
