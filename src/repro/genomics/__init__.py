"""Genomic data substrate.

* :mod:`~repro.genomics.snp` — SNP metadata and panels.
* :mod:`~repro.genomics.genotype` — binary genotype matrices and the
  aggregate views the protocol exchanges.
* :mod:`~repro.genomics.population` — case/control/reference cohorts.
* :mod:`~repro.genomics.synthetic` — deterministic synthetic cohort
  generation (the dbGaP-data substitution; see DESIGN.md).
* :mod:`~repro.genomics.partition` — equal horizontal splits across
  federation members.
* :mod:`~repro.genomics.vcf` — simplified signed VCF files.
"""

from .genotype import GenotypeMatrix
from .partition import LocalDataset, partition_cohort
from .ped import cohort_from_ped, read_map, read_ped, write_map, write_ped
from .population import Cohort
from .snp import SnpInfo, SnpPanel
from .synthetic import SyntheticSpec, SyntheticTruth, generate_cohort
from .vcf import SignedMatrix, SignedVcf, read_vcf, write_vcf

__all__ = [
    "GenotypeMatrix",
    "LocalDataset",
    "cohort_from_ped",
    "read_map",
    "read_ped",
    "write_map",
    "write_ped",
    "partition_cohort",
    "Cohort",
    "SnpInfo",
    "SnpPanel",
    "SyntheticSpec",
    "SyntheticTruth",
    "generate_cohort",
    "SignedMatrix",
    "SignedVcf",
    "read_vcf",
    "write_vcf",
]
