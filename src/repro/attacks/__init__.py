"""Membership-inference attacks and their evaluation.

Used to *validate* the protocol's guarantees — the released SNP sets
must keep these detectors near their false-positive budget — and by the
examples to demonstrate what goes wrong without GenDPR.
"""

from .evaluation import AttackEvaluation, compare_released_vs_withheld, evaluate_attack
from .membership import (
    AttackDecision,
    HomerAttack,
    LrAttack,
    collusion_adjusted_frequencies,
)

__all__ = [
    "AttackEvaluation",
    "compare_released_vs_withheld",
    "evaluate_attack",
    "AttackDecision",
    "HomerAttack",
    "LrAttack",
    "collusion_adjusted_frequencies",
]
