"""The enclave execution model.

An :class:`Enclave` is the simulation's unit of trust.  It mirrors the
SGX programming model the paper builds on:

* Untrusted host code interacts with the enclave **only** through
  registered ECALLs (:meth:`Enclave.ecall`); direct attribute access to
  trusted state from outside raises :class:`EnclaveViolationError` in
  audited runs (see :meth:`trusted_state_names`).
* Each enclave has a :class:`~repro.tee.measurement.Measurement`
  identifying its code, and a platform-bound root key from which sealing
  keys derive.
* All ECALL execution is metered by a
  :class:`~repro.tee.resources.ResourceMeter` so the benchmarks can
  reproduce the paper's CPU/memory table.

Subclasses implement trusted logic as ordinary methods decorated with
:func:`ecall`.
"""

from __future__ import annotations

import functools
from typing import Any, Callable, Dict, Optional, Set, Type, TypeVar

from ..crypto.kdf import derive_subkey
from ..crypto.rng import DeterministicRng, system_random_bytes
from ..errors import EnclaveCrashedError, EnclaveViolationError, TEEError
from ..obs.tracer import TRACER
from .measurement import Measurement, measure_class
from .resources import ResourceMeter

F = TypeVar("F", bound=Callable[..., Any])

_ECALL_ATTR = "_repro_ecall_name"


def ecall(func: F) -> F:
    """Mark a method as an ECALL entry point of its enclave class."""
    setattr(func, _ECALL_ATTR, func.__name__)
    return func


class Enclave:
    """Base class for simulated enclaves.

    Args:
        platform_key: secret root key of the hosting platform (models the
            CPU's fused key material).  Sealing keys are derived from it
            together with the enclave measurement.
        enclave_id: stable identifier of this enclave instance within the
            federation (e.g. ``"gdo-3"``).
        rng: deterministic RNG for reproducible runs; a system-entropy
            DRBG is created when omitted.
    """

    #: Bump to invalidate attestation of older trusted-code revisions.
    CODE_VERSION = "1"

    def __init__(
        self,
        platform_key: bytes,
        enclave_id: str,
        rng: Optional[DeterministicRng] = None,
    ):
        if len(platform_key) < 16:
            raise TEEError("platform key must be at least 16 bytes")
        if not enclave_id:
            raise TEEError("enclave_id must be non-empty")
        self.enclave_id = enclave_id
        self.measurement: Measurement = measure_class(
            type(self), version=self.CODE_VERSION
        )
        self.meter = ResourceMeter()
        self._crashed = False
        self._platform_key = platform_key
        self._rng = rng if rng is not None else DeterministicRng(
            system_random_bytes(32)
        )
        self._ecalls = self._collect_ecalls()

    # -- ECALL machinery -------------------------------------------------------

    @classmethod
    def _collect_ecalls(cls) -> Dict[str, str]:
        names: Dict[str, str] = {}
        for klass in cls.__mro__:
            for attr_name, attr in vars(klass).items():
                ecall_name = getattr(attr, _ECALL_ATTR, None)
                if ecall_name is not None and ecall_name not in names:
                    names[ecall_name] = attr_name
        return names

    def ecall_names(self) -> Set[str]:
        """The ECALL surface exposed to untrusted code."""
        return set(self._ecalls)

    def ecall(self, name: str, *args: Any, label: str = "", **kwargs: Any) -> Any:
        """Invoke ECALL ``name``; execution time is metered under ``label``.

        This is the *only* legitimate entry into trusted code from the
        untrusted host.
        """
        if self._crashed:
            raise EnclaveCrashedError(f"enclave {self.enclave_id} has crashed")
        if name not in self._ecalls:
            raise EnclaveViolationError(
                f"{name!r} is not an ECALL of {type(self).__name__}"
            )
        method = getattr(self, self._ecalls[name])
        if TRACER.enabled:
            with TRACER.span(
                "ecall", enclave=self.enclave_id, ecall=name, label=label or name
            ), self.meter.measure(label or name):
                return method(*args, **kwargs)
        with self.meter.measure(label or name):
            return method(*args, **kwargs)

    def crash(self) -> None:
        """Tear the enclave down; all trusted state becomes unreachable.

        Models the paper's fault assumption ("as long as no TEE crashes"):
        after a crash every ECALL raises and secrets are destroyed.
        """
        self._crashed = True
        self._platform_key = b"\x00" * 32
        self._rng = DeterministicRng(b"crashed")

    @property
    def crashed(self) -> bool:
        return self._crashed

    # -- Keys ----------------------------------------------------------------

    def _sealing_key(self) -> bytes:
        """MRENCLAVE-policy sealing key: platform key x measurement."""
        if self._crashed:
            raise EnclaveCrashedError(f"enclave {self.enclave_id} has crashed")
        return derive_subkey(
            self._platform_key, "sealing/" + self.measurement.hex()
        )

    def random_bytes(self, length: int) -> bytes:
        """Trusted randomness (hardware DRNG analogue)."""
        return self._rng.bytes(length)

    # -- Auditing ----------------------------------------------------------------

    @classmethod
    def trusted_state_names(cls) -> Set[str]:
        """Attribute names that hold trusted state.

        The audit harness in :mod:`repro.core.audit` uses this to verify
        untrusted code never reads them directly.  Subclasses extend it.
        """
        return {"_platform_key", "_rng"}


def expected_measurement(enclave_class: Type[Enclave]) -> Measurement:
    """The measurement attestation verifiers should demand for a class."""
    return measure_class(enclave_class, version=enclave_class.CODE_VERSION)


class GuardedEnclaveProxy:
    """Wraps an enclave so only the ECALL surface is reachable.

    The protocol hands untrusted components this proxy instead of the raw
    enclave object, turning the simulation's trust boundary into an
    enforced API boundary: attribute access other than ``ecall``/identity
    raises :class:`EnclaveViolationError`.

    An optional ``ecall_interceptor`` callable ``(enclave, name)`` runs
    before each proxied ECALL dispatch; the fault injector uses it to
    model enclave crashes at deterministic ECALL indices.  Without an
    interceptor the proxy returns the enclave's bound ``ecall`` method
    directly — the exact pre-interceptor fast path.
    """

    _ALLOWED = {"ecall", "enclave_id", "measurement", "meter", "crashed"}

    def __init__(
        self,
        enclave: Enclave,
        ecall_interceptor: Optional[Callable[[Enclave, str], None]] = None,
    ):
        object.__setattr__(self, "_enclave", enclave)
        object.__setattr__(self, "_ecall_interceptor", ecall_interceptor)

    def __getattr__(self, name: str) -> Any:
        if name in self._ALLOWED:
            enclave = object.__getattribute__(self, "_enclave")
            if name == "ecall":
                interceptor = object.__getattribute__(self, "_ecall_interceptor")
                if interceptor is not None:
                    def intercepted(
                        ecall_name: str, *args: Any, **kwargs: Any
                    ) -> Any:
                        interceptor(enclave, ecall_name)
                        return enclave.ecall(ecall_name, *args, **kwargs)

                    return intercepted
            return getattr(enclave, name)
        raise EnclaveViolationError(
            f"untrusted access to enclave attribute {name!r} denied"
        )

    def __setattr__(self, name: str, value: Any) -> None:
        raise EnclaveViolationError("untrusted code cannot mutate enclave state")


def guarded(
    enclave: Enclave,
    ecall_interceptor: Optional[Callable[[Enclave, str], None]] = None,
) -> GuardedEnclaveProxy:
    """Convenience constructor for :class:`GuardedEnclaveProxy`."""
    return GuardedEnclaveProxy(enclave, ecall_interceptor)


def ecall_method(label: str) -> Callable[[F], F]:
    """Decorator stacking :func:`ecall` with a fixed metering label.

    Useful for enclaves whose ECALLs always belong to one protocol phase.
    """

    def decorate(func: F) -> F:
        marked = ecall(func)

        @functools.wraps(marked)
        def wrapper(self: Enclave, *args: Any, **kwargs: Any) -> Any:
            with self.meter.measure(label):
                return marked(self, *args, **kwargs)

        setattr(wrapper, _ECALL_ATTR, getattr(marked, _ECALL_ATTR))
        return wrapper  # type: ignore[return-value]

    return decorate
