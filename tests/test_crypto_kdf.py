"""HKDF: RFC 5869 test vectors and derivation properties."""

from __future__ import annotations

import pytest

from repro.crypto.kdf import derive_subkey, hkdf, hkdf_expand, hkdf_extract


def test_rfc5869_case_1():
    """RFC 5869 A.1 (SHA-256, basic)."""
    ikm = bytes([0x0B] * 22)
    salt = bytes(range(0x0D))
    info = bytes(range(0xF0, 0xFA))
    okm = hkdf(ikm, salt=salt, info=info, length=42)
    assert okm.hex() == (
        "3cb25f25faacd57a90434f64d0362f2a"
        "2d2d0a90cf1a5a4c5db02d56ecc4c5bf"
        "34007208d5b887185865"
    )


def test_rfc5869_case_1_prk():
    ikm = bytes([0x0B] * 22)
    salt = bytes(range(0x0D))
    prk = hkdf_extract(salt, ikm)
    assert prk.hex() == (
        "077709362c2e32df0ddc3f0dc47bba6390b6c73bb50f9c3122ec844ad7c2b3e5"
    )


def test_rfc5869_case_3_no_salt_no_info():
    """RFC 5869 A.3 (zero-length salt and info)."""
    okm = hkdf(bytes([0x0B] * 22), salt=b"", info=b"", length=42)
    assert okm.hex() == (
        "8da4e775a563c18f715f802a063c5a31"
        "b8a11f5c5ee1879ec3454e5f3c738d2d"
        "9d201395faa4b61a96c8"
    )


def test_expand_lengths():
    prk = hkdf_extract(b"salt", b"ikm")
    for length in (1, 31, 32, 33, 64, 255):
        assert len(hkdf_expand(prk, b"info", length)) == length


def test_expand_prefix_consistency():
    prk = hkdf_extract(b"salt", b"ikm")
    assert hkdf_expand(prk, b"info", 64)[:20] == hkdf_expand(prk, b"info", 20)


def test_expand_rejects_bad_lengths():
    prk = hkdf_extract(b"", b"ikm")
    with pytest.raises(ValueError):
        hkdf_expand(prk, b"", 0)
    with pytest.raises(ValueError):
        hkdf_expand(prk, b"", 255 * 32 + 1)


def test_distinct_info_distinct_output():
    prk = hkdf_extract(b"salt", b"ikm")
    assert hkdf_expand(prk, b"a", 32) != hkdf_expand(prk, b"b", 32)


def test_derive_subkey_label_separation():
    root = bytes(32)
    assert derive_subkey(root, "sealing") != derive_subkey(root, "channel")
    assert derive_subkey(root, "sealing") == derive_subkey(root, "sealing")


def test_derive_subkey_key_separation():
    assert derive_subkey(bytes(32), "x") != derive_subkey(bytes([1] * 32), "x")
