"""Deterministic cryptographically-styled RNG.

The simulation needs two kinds of randomness:

* **System randomness** for real key generation — ``os.urandom``.
* **Deterministic randomness** for reproducible protocol runs and tests —
  a hash-based DRBG seeded explicitly, so an entire federated execution
  (leader election, nonces, synthetic keys) can be replayed bit-for-bit.

``DeterministicRng`` implements the subset of the ``random``-module
surface the library needs, backed by SHA-256 in counter mode, which makes
its outputs independent of Python's Mersenne-Twister internals and stable
across Python versions.
"""

from __future__ import annotations

import hashlib
import os


class DeterministicRng:
    """SHA-256 counter-mode deterministic random generator."""

    def __init__(self, seed: bytes | int | str):
        if isinstance(seed, int):
            seed = seed.to_bytes((seed.bit_length() + 8) // 8 or 1, "big", signed=False)
        elif isinstance(seed, str):
            seed = seed.encode("utf-8")
        self._key = hashlib.sha256(b"repro.drbg:" + seed).digest()
        self._counter = 0
        self._buffer = b""

    def bytes(self, length: int) -> bytes:
        """Return ``length`` pseudorandom bytes."""
        if length < 0:
            raise ValueError("length must be non-negative")
        while len(self._buffer) < length:
            block = hashlib.sha256(
                self._key + self._counter.to_bytes(8, "big")
            ).digest()
            self._counter += 1
            self._buffer += block
        out, self._buffer = self._buffer[:length], self._buffer[length:]
        return out

    def randbelow(self, upper: int) -> int:
        """Uniform integer in ``[0, upper)`` via rejection sampling."""
        if upper <= 0:
            raise ValueError("upper must be positive")
        num_bytes = (upper.bit_length() + 7) // 8
        limit = (256**num_bytes // upper) * upper
        while True:
            candidate = int.from_bytes(self.bytes(num_bytes), "big")
            if candidate < limit:
                return candidate % upper

    def randrange(self, start: int, stop: int) -> int:
        """Uniform integer in ``[start, stop)``."""
        if stop <= start:
            raise ValueError("empty range")
        return start + self.randbelow(stop - start)

    def choice(self, sequence):
        """Uniformly pick one element of a non-empty sequence."""
        if not sequence:
            raise IndexError("cannot choose from an empty sequence")
        return sequence[self.randbelow(len(sequence))]

    def shuffle(self, items: list) -> None:
        """In-place Fisher-Yates shuffle."""
        for i in range(len(items) - 1, 0, -1):
            j = self.randbelow(i + 1)
            items[i], items[j] = items[j], items[i]

    def fork(self, label: str) -> "DeterministicRng":
        """Derive an independent child generator bound to ``label``.

        Forking lets concurrent components draw reproducible randomness
        without consuming from (and thereby reordering) a shared stream.
        """
        return DeterministicRng(self._key + b"/fork:" + label.encode("utf-8"))


def system_random_bytes(length: int) -> bytes:
    """OS-entropy bytes for real key material."""
    return os.urandom(length)
