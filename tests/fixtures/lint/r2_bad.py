"""R2 fixture — protocol-scope determinism violations."""

import random
import time


def decide(candidates, published):
    order = list(set(candidates))  # R2: set order frozen into a list
    for snp in {3, 1, 2}:  # R2: loop over a bare set literal
        order.append(snp)
    labels = [str(s) for s in set(published)]  # R2: comprehension over set
    cache_key = id(candidates)  # R2: id()-keyed decision
    deadline = time.time()  # R2: wall clock in protocol logic
    jitter = random.choice(order)  # R2: global Mersenne Twister
    return order, labels, cache_key, deadline, jitter
