"""Full end-to-end integration: federation -> verification -> release ->
attack validation -> hybrid DP extension, plus fault scenarios.
"""

from __future__ import annotations

import pytest

from repro import (
    CollusionPolicy,
    StudyConfig,
    build_release,
    hybrid_release,
    partition_cohort,
)
from repro.attacks import evaluate_attack
from repro.core.audit import audit_federation
from repro.core.federation import build_federation
from repro.core.protocol import GenDPRProtocol
from repro.errors import EnclaveCrashedError, NetworkError


@pytest.fixture(scope="module")
def full_run(small_cohort):
    config = StudyConfig(
        snp_count=small_cohort.num_snps,
        collusion=CollusionPolicy.static(1),
        seed=11,
        study_id="e2e",
    )
    datasets = partition_cohort(small_cohort, 4)
    federation = build_federation(config, datasets, small_cohort)
    protocol = GenDPRProtocol(federation)
    result = protocol.run()
    return federation, protocol, result, config


class TestEndToEnd:
    def test_study_completes(self, full_run):
        _, _, result, _ = full_run
        assert result.num_members == 4
        assert result.retained_after_lr > 0

    def test_release_pipeline(self, full_run, small_cohort):
        federation, protocol, result, config = full_run
        stats = protocol.release_statistics()
        release = build_release(config.study_id, stats, result.release_power)
        assert release.snp_indices == result.l_safe

        # Extend with DP-perturbed withheld SNPs (Section 5.5 hybrid).
        withheld = sorted(set(range(config.snp_count)) - set(result.l_safe))[:20]
        case_counts = small_cohort.case.allele_counts(withheld)
        ref_counts = small_cohort.reference.allele_counts(withheld)
        hybrid = hybrid_release(
            release,
            all_snps=config.snp_count,
            withheld_case_counts=dict(zip(withheld, case_counts.tolist())),
            withheld_reference_counts=dict(zip(withheld, ref_counts.tolist())),
            epsilon=1.0,
        )
        assert len(hybrid.statistics) == len(release.statistics) + 20

    def test_release_resists_attack(self, full_run, small_cohort):
        _, _, result, config = full_run
        evaluation = evaluate_attack(
            small_cohort,
            result.l_safe,
            alpha=config.thresholds.false_positive_rate,
        )
        assert evaluation.power <= config.thresholds.power_threshold + 0.05

    def test_audit_clean(self, full_run):
        federation, _, _, _ = full_run
        report = audit_federation(federation)
        assert report.ok, report.violations

    def test_collusion_report_consistent(self, full_run):
        _, _, result, _ = full_run
        final = set(result.l_safe)
        for outcome in result.collusion.outcomes:
            assert final <= set(outcome.safe_snps)


class TestFaultScenarios:
    def test_crashed_member_enclave_halts_study(self, small_cohort):
        config = StudyConfig(
            snp_count=small_cohort.num_snps, seed=3, study_id="crash"
        )
        datasets = partition_cohort(small_cohort, 3)
        federation = build_federation(config, datasets, small_cohort)
        victim = next(
            m for m in federation.member_ids if m != federation.leader_id
        )
        federation.enclaves[victim].crash()
        with pytest.raises(EnclaveCrashedError):
            GenDPRProtocol(federation).run()

    def test_partitioned_member_halts_study(self, small_cohort):
        """No liveness under partitions — matching the paper's model,
        which makes no liveness guarantee once members are unresponsive."""
        config = StudyConfig(
            snp_count=small_cohort.num_snps, seed=3, study_id="partition"
        )
        datasets = partition_cohort(small_cohort, 3)
        federation = build_federation(config, datasets, small_cohort)
        victim = next(
            m for m in federation.member_ids if m != federation.leader_id
        )
        federation.network.partition(victim)
        with pytest.raises(NetworkError):
            GenDPRProtocol(federation).run()

    def test_study_recovers_after_heal(self, small_cohort):
        config = StudyConfig(
            snp_count=small_cohort.num_snps, seed=3, study_id="heal"
        )
        datasets = partition_cohort(small_cohort, 3)
        federation = build_federation(config, datasets, small_cohort)
        victim = next(
            m for m in federation.member_ids if m != federation.leader_id
        )
        federation.network.partition(victim)
        federation.network.heal(victim)
        result = GenDPRProtocol(federation).run()
        assert result.retained_after_lr > 0
