"""Phase timing with a parallel-federation clock.

The paper's Figures 5 and 6 break the running time into four task
categories.  Reproducing their *shape* on a single machine requires one
modelling step: in a real deployment every member's enclave computes its
answer to a leader request **concurrently on its own server**, whereas
this simulation executes them sequentially in one process.  The
:class:`RoundAccounting` hook therefore records, for every
request/response round, both the sequential sum and the per-round
maximum of member compute times; the reported wall time replaces the
sum by the maximum, which is exactly the time a synchronous round takes
across parallel sites.  Leader-side computation is charged as measured.

Everything else (no hidden scaling factors) is honest wall-clock time of
this Python implementation, so absolute numbers differ from the paper's
C/C++ enclaves while ratios across configurations are preserved.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator

from ..obs.tracer import TRACER

#: Task labels, matching the legend of the paper's Figures 5 and 6.
DATA_AGGREGATION = "Data Aggregation"
INDEXING = "Indexing/Sorting/AlleleFreq."
LD_ANALYSIS = "LD analysis"
LR_ANALYSIS = "LR-test analysis"

ALL_LABELS = (DATA_AGGREGATION, INDEXING, LD_ANALYSIS, LR_ANALYSIS)


@dataclass
class RoundAccounting:
    """Collects member compute times of request/response rounds."""

    sequential_seconds: float = 0.0
    parallel_seconds: float = 0.0
    #: Wall-clock the round actually occupied in this process.  For a
    #: sequential round that is the sum of member times (the loop runs
    #: them back to back); a concurrent round passes its measured round
    #: wall, which is what the parallel correction must reconcile with.
    measured_seconds: float = 0.0
    rounds: int = 0
    #: Rounds executed via the concurrent fan-out engine.
    concurrent_rounds: int = 0
    #: Total member answers across all rounds (concurrency numerator).
    member_answers: int = 0
    rounds_by_kind: Dict[str, int] = field(default_factory=dict)

    def record_round(
        self,
        member_seconds: Dict[str, float],
        *,
        kind: str = "",
        wall_seconds: float | None = None,
        concurrent: bool = False,
    ) -> None:
        """Record one round's per-member compute durations.

        ``wall_seconds`` is the wall-clock the round occupied (defaults
        to the sum of member times, i.e. sequential execution);
        ``kind`` tags the round with its request tag for per-phase round
        counting; ``concurrent`` marks rounds run by the fan-out engine.
        """
        if not member_seconds:
            return
        values = list(member_seconds.values())
        self.sequential_seconds += sum(values)
        self.parallel_seconds += max(values)
        self.measured_seconds += (
            sum(values) if wall_seconds is None else max(wall_seconds, 0.0)
        )
        self.rounds += 1
        self.member_answers += len(values)
        if concurrent:
            self.concurrent_rounds += 1
        if kind:
            self.rounds_by_kind[kind] = self.rounds_by_kind.get(kind, 0) + 1

    @property
    def parallel_saving(self) -> float:
        """Seconds the parallel model removes from the measured trace.

        With sequential execution this is the classic sum-minus-max
        correction; with the concurrent engine the measured round walls
        already overlap member work, so the remaining correction is only
        the gap between the real wall and the ideal ``max`` model
        (thread scheduling overhead, GIL contention).
        """
        return self.measured_seconds - self.parallel_seconds

    @property
    def mean_concurrency(self) -> float:
        """Mean member answers per round (ideal fan-out width)."""
        return self.member_answers / self.rounds if self.rounds else 0.0


@dataclass
class PhaseTimings:
    """Per-task simulated wall time of one protocol run."""

    seconds_by_label: Dict[str, float] = field(default_factory=dict)

    def add(self, label: str, seconds: float) -> None:
        if seconds < 0:
            # Clock adjustments can produce tiny negative residues; clamp.
            seconds = 0.0
        self.seconds_by_label[label] = self.seconds_by_label.get(label, 0.0) + seconds

    @property
    def total_seconds(self) -> float:
        return sum(self.seconds_by_label.values())

    def get(self, label: str) -> float:
        return self.seconds_by_label.get(label, 0.0)

    def merge(self, other: "PhaseTimings") -> None:
        for label, seconds in other.seconds_by_label.items():
            self.add(label, seconds)

    def as_milliseconds(self) -> Dict[str, float]:
        """Milliseconds per label, the unit the paper's figures use."""
        out = {label: 1000.0 * self.get(label) for label in ALL_LABELS}
        out["Total"] = 1000.0 * self.total_seconds
        return out


class PhaseClock:
    """Context-manager stopwatch writing into a :class:`PhaseTimings`.

    Usage::

        clock = PhaseClock(timings)
        with clock.task(LD_ANALYSIS, accounting):
            ... leader ECALL that may run member exchange rounds ...

    When ``accounting`` is supplied, the elapsed time is corrected from
    sequential member execution to the parallel-round model described in
    the module docstring.
    """

    def __init__(self, timings: PhaseTimings):
        self._timings = timings

    @contextmanager
    def task(
        self, label: str, accounting: RoundAccounting | None = None
    ) -> Iterator[None]:
        baseline_saving = accounting.parallel_saving if accounting else 0.0
        with TRACER.span("phase", label=label) as span:
            begin = time.perf_counter()
            try:
                yield
            finally:
                raw = time.perf_counter() - begin
                elapsed = raw
                if accounting is not None:
                    elapsed -= accounting.parallel_saving - baseline_saving
                elapsed = max(elapsed, 0.0)
                self._timings.add(label, elapsed)
                # The span's duration is the *corrected* phase time, so
                # phase spans sum to the PhaseTimings totals; the raw
                # wall time stays available as an attribute.
                span.annotate(seconds=elapsed, raw_seconds=raw)
                span.set_duration_seconds(elapsed)
