"""Finding and severity model for the static-analysis engine.

A :class:`Finding` is one rule violation at one source location.  It is
deliberately a plain value object: rules produce findings, the engine
filters them (inline suppressions, baseline) and the reporters render
them — no stage mutates a finding after creation.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field, replace
from enum import Enum
from typing import Any, Dict


class Severity(Enum):
    """How bad a finding is; ``ERROR`` findings fail the lint run."""

    ERROR = "error"
    WARNING = "warning"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class Finding:
    """One rule violation at ``path:line``.

    ``module`` is the dotted module name the engine resolved for the
    file, so baselines stay valid when a checkout lives at a different
    absolute path.  ``line_content`` is the stripped source line, used
    for content-addressed baseline matching (robust to line drift).
    """

    rule: str
    severity: Severity
    path: str
    module: str
    line: int
    column: int
    message: str
    line_content: str = field(default="", compare=False)

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.column}"

    def fingerprint(self) -> str:
        """Content-addressed identity used by the baseline file."""
        payload = "\x00".join((self.rule, self.module, self.line_content))
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]

    def baseline_key(self) -> "tuple[str, str, str]":
        return (self.rule, self.module, self.line_content)

    def with_path(self, path: str) -> "Finding":
        return replace(self, path=path)

    def as_dict(self) -> Dict[str, Any]:
        """JSON-ready representation (schema in docs/STATIC_ANALYSIS.md)."""
        return {
            "rule": self.rule,
            "severity": self.severity.value,
            "path": self.path,
            "module": self.module,
            "line": self.line,
            "column": self.column,
            "message": self.message,
            "fingerprint": self.fingerprint(),
        }

    def render(self) -> str:
        return (
            f"{self.location()}: {self.rule} [{self.severity.value}] "
            f"{self.message}"
        )
