"""Horizontal partitioning of a cohort across federation members.

The paper "divided genomes equally among federation members"; only the
**case** population is split — the reference dataset is public and
available to every member, and the leader uses it directly.

:func:`partition_cohort` returns one :class:`LocalDataset` per GDO, each
carrying that member's case shard plus a handle to the shared reference.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..config import equal_partition_sizes
from ..errors import PartitionError
from .genotype import GenotypeMatrix
from .population import Cohort


@dataclass(frozen=True)
class LocalDataset:
    """One federation member's on-premises data."""

    gdo_id: str
    case: GenotypeMatrix

    @property
    def num_case(self) -> int:
        return self.case.num_individuals


def partition_cohort(
    cohort: Cohort,
    num_members: int,
    *,
    sizes: Optional[Sequence[int]] = None,
    shuffle_seed: Optional[int] = None,
) -> List[LocalDataset]:
    """Split the cohort's case population across ``num_members`` GDOs.

    Args:
        cohort: the full study cohort.
        num_members: number of federation members (``G``).
        sizes: explicit shard sizes; defaults to an equal split.
        shuffle_seed: when given, individuals are shuffled before the
            split — used by the partition-invariance property tests to
            show GenDPR's outcome does not depend on *which* genomes land
            at which member.
    """
    if num_members <= 0:
        raise PartitionError("num_members must be positive")
    total = cohort.case.num_individuals
    if sizes is None:
        sizes = equal_partition_sizes(total, num_members)
    if len(sizes) != num_members:
        raise PartitionError(
            f"got {len(sizes)} sizes for {num_members} members"
        )
    if sum(sizes) != total:
        raise PartitionError(
            f"shard sizes sum to {sum(sizes)}, cohort has {total} case genomes"
        )
    if any(size <= 0 for size in sizes):
        raise PartitionError(
            "every member needs at least one case genome "
            "(empty shards cannot contribute to the study)"
        )

    case = cohort.case
    if shuffle_seed is not None:
        order = np.random.Generator(np.random.PCG64(shuffle_seed)).permutation(
            total
        )
        case = case.select_individuals(order.tolist())

    shards = case.split_rows(sizes)
    return [
        LocalDataset(gdo_id=f"gdo-{i}", case=shard)
        for i, shard in enumerate(shards)
    ]
