#!/usr/bin/env python3
"""Why unchecked GWAS releases are dangerous — and what GenDPR prevents.

Plays the adversary of the paper's threat model: armed with a victim's
genotype and a public reference population, attack

  (a) a naive release that publishes statistics over *every* SNP, and
  (b) GenDPR's verified release over the safe subset only,

with both the likelihood-ratio detector (Sankararaman et al.) and
Homer's distance statistic.  The naive release identifies most of the
study's participants; the verified release stays near the detector's
false-positive budget.

Run:  python examples/membership_attack_demo.py
"""

from __future__ import annotations

from repro import PrivacyThresholds, StudyConfig, SyntheticSpec, generate_cohort, run_study
from repro.attacks import HomerAttack, LrAttack, evaluate_attack

NUM_SNPS = 500


def main() -> None:
    # A leaky cohort: noticeable case-frequency drift at every SNP.
    spec = SyntheticSpec(
        num_snps=NUM_SNPS,
        num_case=900,
        num_control=900,
        case_drift_sd=0.12,
        seed=14,
    )
    cohort, _ = generate_cohort(spec)
    # A strict study: identification power must stay below 0.4.
    config = StudyConfig(
        snp_count=NUM_SNPS,
        thresholds=PrivacyThresholds(power_threshold=0.4),
        study_id="attack-demo",
    )
    result = run_study(cohort, config, num_members=3)

    naive_snps = list(range(NUM_SNPS))  # publish everything
    safe_snps = result.l_safe  # GenDPR's verdict

    print(f"Cohort: {cohort.describe()}")
    print(f"GenDPR retained {len(safe_snps)} of {NUM_SNPS} SNPs as safe")
    print("(the power threshold binds the protocol's internal calibration; "
          "an external\n re-evaluation below uses fresh reference splits, "
          "so its estimates carry noise)\n")

    print(f"{'release':<22s} {'detector':<12s} {'power':>7s} {'fpr':>6s} {'advantage':>10s}")
    print("-" * 60)
    for release_name, snps in (("ALL SNPs (unchecked)", naive_snps),
                               ("GenDPR safe subset", safe_snps)):
        for detector in (LrAttack, HomerAttack):
            evaluation = evaluate_attack(cohort, snps, alpha=0.1, detector=detector)
            print(
                f"{release_name:<22s} {detector.__name__:<12s} "
                f"{evaluation.power:>7.3f} {evaluation.false_positive_rate:>6.3f} "
                f"{evaluation.advantage:>10.3f}"
            )

    # Single-victim walkthrough with the LR detector on the unchecked
    # release: score one actual participant and one outsider.
    case_freq = cohort.case.allele_counts() / cohort.case.num_individuals
    ref_freq = cohort.reference.allele_counts() / cohort.reference.num_individuals
    attack = LrAttack(
        case_freq, ref_freq, cohort.reference.array()[:400], alpha=0.1
    )
    participant = attack.infer(cohort.case.array()[0])
    outsider = attack.infer(cohort.reference.array()[450])
    print("\nSingle-victim LR test against the unchecked release:")
    print(f"  participant: score {participant.score:8.2f} "
          f"(threshold {participant.threshold:.2f}) -> "
          f"{'IDENTIFIED' if participant.inferred_member else 'not identified'}")
    print(f"  outsider:    score {outsider.score:8.2f} "
          f"(threshold {outsider.threshold:.2f}) -> "
          f"{'false positive' if outsider.inferred_member else 'correctly rejected'}")


if __name__ == "__main__":
    main()
