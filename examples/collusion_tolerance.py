#!/usr/bin/env python3
"""Collusion-tolerant verification (paper Section 5.6 / Table 5).

Honest-but-curious federation members can pool what they know and
subtract their own contributions from released statistics, isolating
the honest members' aggregate — which may be identifiable even when the
full federation's release is safe.  GenDPR re-runs every verification
phase over all C(G, G-f) honest-member combinations and releases only
SNPs that are safe in every one.

This script contrasts a plain release with tolerant releases at
increasing f for a 4-member federation, and shows what the withheld
("vulnerable") SNPs would have exposed.

Run:  python examples/collusion_tolerance.py
"""

from __future__ import annotations

from repro import (
    CollusionPolicy,
    StudyConfig,
    SyntheticSpec,
    generate_cohort,
    partition_cohort,
    run_study,
)
from repro.attacks import LrAttack, collusion_adjusted_frequencies

NUM_MEMBERS = 4
NUM_SNPS = 600


def main() -> None:
    spec = SyntheticSpec(
        num_snps=NUM_SNPS,
        num_case=1_400,
        num_control=1_200,
        num_sites=NUM_MEMBERS,
        site_effect_sd=0.05,
        case_drift_sd=0.05,
        seed=21,
    )
    cohort, _ = generate_cohort(spec)

    policies = [
        ("f = 1", CollusionPolicy.static(1)),
        ("f = 2", CollusionPolicy.static(2)),
        ("f = 3 (all-but-one)", CollusionPolicy.static(3)),
        ("f = {1,2,3} (conservative)", CollusionPolicy.conservative(NUM_MEMBERS)),
    ]

    print(f"{NUM_MEMBERS}-member federation, {NUM_SNPS} SNPs\n")
    header = f"{'policy':<28s} {'combos':>6s} {'plain':>6s} {'safe':>6s} {'withheld':>9s} {'time(ms)':>9s}"
    print(header)
    print("-" * len(header))

    for label, policy in policies:
        config = StudyConfig(
            snp_count=NUM_SNPS,
            collusion=policy,
            seed=2,
            study_id=f"collusion-{label}",
        )
        result = run_study(cohort, config, NUM_MEMBERS)
        report = result.collusion
        vulnerable = report.vulnerable_snps(tuple(result.l_safe))
        print(
            f"{label:<28s} {report.combinations_evaluated:>6d} "
            f"{len(report.baseline_safe):>6d} {result.retained_after_lr:>6d} "
            f"{len(vulnerable):>9d} {result.timings.total_seconds * 1000:>9.1f}"
        )

    # --- The actual coalition attack -------------------------------------
    # Under f = G-1, the colluders are every member but one.  They know
    # their own data, so from any released aggregate they can subtract
    # their contributions and isolate the lone honest member's allele
    # frequencies, then run the LR detector against *that* sub-population.
    config = StudyConfig(
        snp_count=NUM_SNPS,
        collusion=CollusionPolicy.static(NUM_MEMBERS - 1),
        seed=2,
        study_id="collusion-analysis",
    )
    result = run_study(cohort, config, NUM_MEMBERS)
    plain_release = list(result.collusion.baseline_safe)
    tolerant_release = result.l_safe

    datasets = partition_cohort(cohort, NUM_MEMBERS)
    honest = datasets[0]
    colluders = datasets[1:]

    def coalition_power(released_snps):
        """LR detection power against the honest member's participants."""
        if not released_snps:
            return 0.0
        total_counts = cohort.case.allele_counts(released_snps)
        isolated_freqs, _ = collusion_adjusted_frequencies(
            total_counts,
            cohort.case.num_individuals,
            [c.case.allele_counts(released_snps) for c in colluders],
            [c.num_case for c in colluders],
        )
        ref = cohort.reference.array()[:, released_snps]
        ref_freqs = ref.mean(axis=0)
        attack = LrAttack(isolated_freqs, ref_freqs, ref[: len(ref) // 2], alpha=0.1)
        return float(attack.infer_batch(
            honest.case.array()[:, released_snps]
        ).mean())

    print("\nCoalition (G-1 colluders) LR attack on the honest member:")
    print(f"  plain release    ({len(plain_release)} SNPs): "
          f"power {coalition_power(plain_release):.3f}")
    print(f"  tolerant release ({len(tolerant_release)} SNPs): "
          f"power {coalition_power(tolerant_release):.3f}")
    print("Collusion tolerance withholds the SNPs that contribute most to "
          "identifying the isolated sub-federation's participants.")


if __name__ == "__main__":
    main()
