#!/usr/bin/env python3
"""A complete federated GWAS release, the workload the paper motivates.

Five biocenters on different continents hold shards of an age-related
macular degeneration (AMD) style case cohort with real population
stratification between sites.  They want to publish chi-squared
association statistics without enabling membership inference.

The script walks the full middleware pipeline:

1. provision the federation (attestation, channels, signed datasets),
2. run GenDPR's three verification phases,
3. audit that no genome crossed a site boundary,
4. build the open-access release over the safe SNPs, and
5. extend it with DP-perturbed statistics over the withheld SNPs
   (the Section 5.5 hybrid), so every requested position gets a value.

Run:  python examples/federated_gwas_release.py
"""

from __future__ import annotations

from repro import (
    StudyConfig,
    SyntheticSpec,
    build_release,
    generate_cohort,
    hybrid_release,
    partition_cohort,
)
from repro.core.audit import audit_federation, genome_egress_savings
from repro.core.dp import epsilon_for_frequency_error
from repro.core.federation import build_federation
from repro.core.protocol import GenDPRProtocol
from repro.stats import pearson_chi_square, utility_report

NUM_BIOCENTERS = 5
NUM_SNPS = 1_000


def main() -> None:
    # A stratified multi-site cohort: each collection site's allele
    # frequencies deviate slightly (Fst-scale), as real biobanks' do.
    spec = SyntheticSpec(
        num_snps=NUM_SNPS,
        num_case=1_500,
        num_control=1_300,
        num_sites=NUM_BIOCENTERS,
        site_effect_sd=0.03,
        seed=8,
    )
    cohort, _ = generate_cohort(spec)
    config = StudyConfig(snp_count=NUM_SNPS, study_id="amd-federated")

    # --- 1. Provisioning -------------------------------------------------
    datasets = partition_cohort(cohort, NUM_BIOCENTERS)
    federation = build_federation(config, datasets, cohort)
    print(f"Federation of {NUM_BIOCENTERS} biocenters provisioned; "
          f"leader: {federation.leader_id}")
    print(f"Attested-channel handshakes: {federation.handshake_bytes:,} bytes")

    # --- 2. Verification --------------------------------------------------
    protocol = GenDPRProtocol(federation)
    result = protocol.run()
    print(f"\n{result.summary()}")

    # --- 3. Egress audit --------------------------------------------------
    audit = audit_federation(federation)
    audit.raise_on_violation()
    print("\nEgress audit: CLEAN — payload kinds on the wire:")
    for kind, size in sorted(audit.bytes_by_kind().items()):
        print(f"  {kind:<10s} {size:>12,} plaintext bytes")
    savings = genome_egress_savings(federation, NUM_SNPS)
    print(f"Genome bytes that never left their sites: "
          f"{savings['byte_encoding_avoided_bytes']:,}")

    # --- 4. Exact release over the safe subset ----------------------------
    release = build_release(
        config.study_id, protocol.release_statistics(), result.release_power
    )
    print(f"\nOpen-access release: {len(release.statistics)} SNPs, "
          f"residual detector power {release.residual_power:.3f}")
    print("Most significant released associations:")
    for stat in release.most_significant(5):
        print(f"  SNP #{stat.snp_index:<5d} chi2={stat.chi2:8.2f} "
              f"p={stat.pvalue:.2e} case_freq={stat.case_frequency:.3f}")

    # --- 5. Hybrid DP extension over the withheld complement --------------
    withheld = sorted(set(range(NUM_SNPS)) - set(result.l_safe))
    epsilon = epsilon_for_frequency_error(
        target_error=0.02, num_individuals=cohort.case.num_individuals
    )
    hybrid = hybrid_release(
        release,
        all_snps=NUM_SNPS,
        withheld_case_counts={
            snp: int(count)
            for snp, count in zip(withheld, cohort.case.allele_counts(withheld))
        },
        withheld_reference_counts={
            snp: int(count)
            for snp, count in zip(
                withheld, cohort.reference.allele_counts(withheld)
            )
        },
        epsilon=epsilon,
    )
    print(f"\nHybrid release covers all {len(hybrid.statistics)} desired SNPs:")
    print(f"  exact:        {len(hybrid.exact())}")
    print(f"  DP-perturbed: {len(hybrid.perturbed())} "
          f"(epsilon={epsilon:.4f} per count)")

    # --- 6. What did privacy cost scientifically? --------------------------
    full_stats = pearson_chi_square(
        cohort.case.allele_counts(),
        cohort.reference.allele_counts(),
        cohort.case.num_individuals,
        cohort.reference.num_individuals,
    )
    print(f"\nUtility of the exact release: "
          f"{utility_report(result.l_safe, full_stats)}")


if __name__ == "__main__":
    main()
