"""Table 5 — collusion-tolerant GenDPR.

Paper: with 14,860 genomes / 10,000 SNPs, for G in {3, 4, 5} and every
static f (plus the conservative f = {1..G-1} mode), between 20.9% and
28.3% of the otherwise-safe SNPs become vulnerable when members collude
and are withheld; the conservative mode costs the most combinations and
the f = G-1 setting is the cheapest of each group.

This bench reproduces every row.  The *fraction* of vulnerable SNPs
depends on where the cohort's leakage sits relative to the power
threshold — with synthetic data it lands in a band rather than on the
paper's exact 20-28% (see EXPERIMENTS.md) — while the structural shape
is asserted: the tolerant safe set shrinks, it is a subset of the f=0
set, and the conservative mode evaluates the most combinations.
"""

from __future__ import annotations

from repro.bench import (
    PAPER_CASE_FULL,
    bench_scale,
    collusion_row,
    paper_cohort,
    render_collusion_table,
)

SNPS = 10_000

SETTINGS = [
    (3, [1]),
    (3, [2]),
    (3, [1, 2]),
    (4, [1]),
    (4, [2]),
    (4, [3]),
    (4, [1, 2, 3]),
    (5, [1]),
    (5, [2]),
    (5, [3]),
    (5, [4]),
    (5, [1, 2, 3, 4]),
]


def test_table5_collusion_tolerance(benchmark, save_result):
    cohort, _ = paper_cohort(PAPER_CASE_FULL, SNPS)

    def run_all():
        return [
            collusion_row(cohort, SNPS, gdos, f_values)
            for gdos, f_values in SETTINGS
        ]

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    save_result(
        "table5_collusion",
        render_collusion_table(rows)
        + f"\n(case genomes: {cohort.case.num_individuals:,}, "
        f"scale={bench_scale()}; paper withholds 20.9-28.3%)",
    )

    for row in rows:
        assert int(row["vulnerable"]) >= 0
        assert int(row["combinations"]) >= 1
    # Collusion tolerance withholds SNPs somewhere in this table (the
    # stratified cohort makes isolated sub-federations leakier).
    assert any(int(row["vulnerable"]) > 0 for row in rows)
    # The conservative mode of each G evaluates the most combinations.
    for gdos in (3, 4, 5):
        group = [row for row in rows if row["gdos"] == gdos]
        conservative = max(group, key=lambda r: len(str(r["setting"])))
        assert int(conservative["combinations"]) == max(
            int(r["combinations"]) for r in group
        )
    benchmark.extra_info["rows"] = rows
