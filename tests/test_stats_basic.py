"""Contingency tables, MAF and chi-squared statistics."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy import stats as scipy_stats

from repro.errors import GenomicsError
from repro.genomics import GenotypeMatrix
from repro.stats import (
    PairwiseTable,
    SinglewiseTable,
    aggregate_counts,
    allele_frequencies,
    chi_square_pvalues,
    folded_maf,
    maf_filter,
    most_ranked,
    paper_chi_square,
    pairwise_table,
    pearson_chi_square,
    rank_pvalues,
    singlewise_table,
)


def _pops(seed=4, rows=50, cols=10):
    rng = np.random.Generator(np.random.PCG64(seed))
    case = GenotypeMatrix((rng.random((rows, cols)) < 0.3).astype(np.uint8))
    control = GenotypeMatrix((rng.random((rows, cols)) < 0.25).astype(np.uint8))
    return case, control


class TestContingency:
    def test_singlewise_margins(self):
        case, control = _pops()
        table = singlewise_table(case, control, 3)
        assert table.n_case == 50 and table.n_control == 50
        assert table.n_total == 100
        assert table.n_minor + table.n_major == 100
        assert table.case_minor == int(case.allele_counts([3])[0])
        assert table.as_array().sum() == 100

    def test_singlewise_rejects_negative(self):
        with pytest.raises(GenomicsError):
            SinglewiseTable(-1, 0, 0, 0)

    def test_pairwise_margins(self):
        case, _ = _pops()
        table = pairwise_table(case, 1, 2)
        assert table.total == 50
        assert table.c0_ + table.c1_ == 50
        assert table.c_0 + table.c_1 == 50
        data = case.array()
        assert table.c11 == int((data[:, 1] & data[:, 2]).sum())

    def test_pairwise_rejects_negative(self):
        with pytest.raises(GenomicsError):
            PairwiseTable(-1, 0, 0, 0)


class TestMaf:
    def test_aggregate_counts(self):
        a = np.array([1, 2, 3], dtype=np.int64)
        b = np.array([4, 5, 6], dtype=np.int64)
        assert np.array_equal(aggregate_counts([a, b]), [5, 7, 9])

    def test_aggregate_validation(self):
        with pytest.raises(GenomicsError):
            aggregate_counts([])
        with pytest.raises(GenomicsError):
            aggregate_counts([np.array([1]), np.array([1, 2])])
        with pytest.raises(GenomicsError):
            aggregate_counts([np.array([-1])])

    def test_allele_frequencies(self):
        freqs = allele_frequencies(np.array([0, 5, 10]), 10)
        assert np.allclose(freqs, [0.0, 0.5, 1.0])
        with pytest.raises(GenomicsError):
            allele_frequencies(np.array([11]), 10)
        with pytest.raises(GenomicsError):
            allele_frequencies(np.array([1]), 0)

    def test_folded_maf(self):
        assert np.allclose(
            folded_maf(np.array([0.1, 0.5, 0.9])), [0.1, 0.5, 0.1]
        )

    def test_maf_filter_boundary(self):
        freqs = np.array([0.04999, 0.05, 0.2, 0.96])
        # 0.96 folds to 0.04 -> removed; exact cutoff retained.
        assert maf_filter(freqs, 0.05) == [1, 2]

    def test_maf_filter_validation(self):
        with pytest.raises(GenomicsError):
            maf_filter(np.array([0.1]), 0.6)

    @given(
        counts=st.lists(st.integers(min_value=0, max_value=100), min_size=1, max_size=30),
    )
    @settings(max_examples=50, deadline=None)
    def test_filter_retains_only_common_property(self, counts):
        total = 100
        freqs = allele_frequencies(np.array(counts, dtype=np.int64), total)
        kept = maf_filter(freqs, 0.05)
        mafs = folded_maf(freqs)
        for index in range(len(counts)):
            assert (index in kept) == (mafs[index] >= 0.05)


class TestChiSquare:
    def test_pearson_matches_scipy(self):
        case, control = _pops()
        case_counts = case.allele_counts()
        control_counts = control.allele_counts()
        ours = pearson_chi_square(case_counts, control_counts, 50, 50)
        for snp in range(10):
            table = np.array(
                [
                    [case_counts[snp], control_counts[snp]],
                    [50 - case_counts[snp], 50 - control_counts[snp]],
                ]
            )
            if table.min() == 0 and (table.sum(axis=1) == 0).any():
                continue
            expected, _, _, _ = scipy_stats.chi2_contingency(
                table, correction=False
            )[0], None, None, None
            assert ours[snp] == pytest.approx(expected, rel=1e-9)

    def test_pvalues_match_scipy(self):
        stats = np.array([0.0, 1.0, 5.0, 25.0])
        assert np.allclose(
            chi_square_pvalues(stats), scipy_stats.chi2.sf(stats, df=1)
        )

    def test_degenerate_margin_gives_zero(self):
        # Allele absent everywhere: no association evidence.
        stat = pearson_chi_square(np.array([0]), np.array([0]), 10, 10)
        assert stat[0] == 0.0

    def test_paper_chi_square(self):
        stat = paper_chi_square(np.array([12]), np.array([8]))
        assert stat[0] == pytest.approx((12 - 8) ** 2 / 8)
        assert paper_chi_square(np.array([5]), np.array([0]))[0] == 0.0

    def test_count_validation(self):
        with pytest.raises(GenomicsError):
            pearson_chi_square(np.array([60]), np.array([0]), 50, 50)
        with pytest.raises(GenomicsError):
            pearson_chi_square(np.array([1, 2]), np.array([1]), 50, 50)
        with pytest.raises(GenomicsError):
            pearson_chi_square(np.array([1]), np.array([1]), 0, 50)

    def test_rank_pvalues_order(self):
        # A strongly associated SNP must out-rank an unassociated one.
        pvals = rank_pvalues(
            np.array([40, 25]), np.array([10, 25]), 50, 50
        )
        assert pvals[0] < pvals[1]

    def test_most_ranked(self):
        pvals = np.array([0.5, 0.01, 0.5])
        assert most_ranked(0, 1, pvals) == 1
        assert most_ranked(1, 0, pvals) == 1
        assert most_ranked(0, 2, pvals) == 0  # tie -> lower index

    def test_chi2_sf_scalar_matches_scipy(self):
        from repro.stats.ld import chi2_sf_1df

        for stat in (0.0, 0.5, 3.84, 19.5, 40.0):
            assert chi2_sf_1df(stat) == pytest.approx(
                float(scipy_stats.chi2.sf(stat, df=1)), rel=1e-9, abs=1e-300
            )
