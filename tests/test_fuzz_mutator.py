"""Mutator determinism and validity (satellite of the fuzzing issue).

Two contracts:

* **Determinism** — the same (seed, input-genome sequence, pool
  sequence) produces a byte-identical mutated-genome sequence; fuzz
  sessions replay from their seed alone.
* **Validity** — every mutated genome is a valid, normalized genome:
  operators mutate freely, :func:`~repro.fuzz.genome.normalize`
  projects back into the threat model.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import FaultConfig
from repro.fuzz.genome import (
    ENVELOPE_RATE_FIELDS,
    PlanGenome,
    normalize,
)
from repro.fuzz.mutator import OPERATORS, PlanMutator

MEMBERS = ("gdo-0", "gdo-1", "gdo-2")
LEADER = "gdo-0"


def _mutator(seed: int) -> PlanMutator:
    return PlanMutator(seed=seed, members=MEMBERS, leader=LEADER)


def _base_genomes():
    return (
        PlanGenome(),
        PlanGenome(
            faults=FaultConfig(enabled=True, seed=7, drop_rate=0.12),
            mode="parallel",
        ),
        PlanGenome(
            faults=FaultConfig(
                enabled=True,
                seed=11,
                equivocate_rate=0.35,
                checkpoint_tamper="stale",
                crash_points=((LEADER, 5),),
            ),
            integrity=True,
        ),
    )


def test_same_seed_yields_byte_identical_sequences():
    sequences = []
    for _ in range(2):
        mutator = _mutator(42)
        genome = PlanGenome()
        pool = list(_base_genomes())
        out = []
        for _ in range(60):
            genome = mutator.mutate(genome, pool=pool)
            out.append(genome.canonical_json())
        sequences.append(out)
    assert sequences[0] == sequences[1]


def test_different_seeds_diverge():
    outputs = []
    for seed in (1, 2):
        mutator = _mutator(seed)
        genome = PlanGenome()
        out = [
            mutator.mutate(genome, pool=_base_genomes()).canonical_json()
            for _ in range(25)
        ]
        outputs.append(out)
    assert outputs[0] != outputs[1]


@settings(max_examples=20, deadline=None)
@given(st.integers(0, 1 << 16))
def test_mutated_genomes_stay_valid_and_normalized(seed):
    """A long mutation walk never leaves the valid, normalized space."""
    mutator = _mutator(seed)
    genome = PlanGenome()
    pool = list(_base_genomes())
    for _ in range(40):
        genome = mutator.mutate(genome, pool=pool)
        # Construction re-validates (frozen dataclass __post_init__),
        # so reaching here means validity; normalization must be a
        # fixpoint.
        assert normalize(genome, MEMBERS).digest() == genome.digest()
        faults = genome.faults
        assert (
            sum(getattr(faults, name) for name in ENVELOPE_RATE_FIELDS)
            <= 1.0
        )
        if faults.shard_flip_rate > 0.0:
            assert faults.shard_flip_target
            assert genome.integrity


def test_mutation_walk_reaches_every_operator_effect():
    """A modest walk exercises rates, structure and axis flips."""
    mutator = _mutator(3)
    genome = PlanGenome()
    saw_rate = saw_crash = saw_partition = saw_axis = False
    for _ in range(300):
        genome = mutator.mutate(genome, pool=(genome,))
        faults = genome.faults
        if any(
            getattr(faults, name) > 0.0 for name in ENVELOPE_RATE_FIELDS
        ):
            saw_rate = True
        if faults.crash_points:
            saw_crash = True
        if faults.partition_windows:
            saw_partition = True
        if genome.mode == "parallel" or genome.shards > 1:
            saw_axis = True
    assert saw_rate and saw_crash and saw_partition and saw_axis


def test_operator_table_is_stable():
    """The operator order is part of the replay contract."""
    assert OPERATORS == (
        "perturb_rate",
        "add_fault",
        "remove_fault",
        "retarget_link",
        "shift_crash_index",
        "shift_partition",
        "reseed_plan",
        "flip_axis",
        "splice_plans",
    )
