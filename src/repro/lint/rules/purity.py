"""R1 — enclave purity.

GenDPR's trust argument (Pascoal et al., Middleware '22, §5) rests on
the attested trusted module doing *only* what the protocol allows: no
genome data leaves a GDO except as TEE↔TEE ciphertext, and every
decision must replay bit-identically from the study seed.  Code in the
"enclave" scope therefore may not reach for ambient nondeterminism or
ambient I/O — wall clocks, the global ``random`` generator, OS entropy,
files, sockets or stdout.  Randomness must come from the seeded
:mod:`repro.crypto.rng` DRBG and persistence from the sealed-storage
API, both of which are replayable and attested.
"""

from __future__ import annotations

import ast
from typing import Iterable, Tuple

from ..astutil import call_name
from ..findings import Finding
from . import ModuleInfo, Rule, register

#: Calls that are forbidden inside the enclave scope, post alias
#: resolution.  Exact dotted names.
BANNED_CALLS: Tuple[str, ...] = (
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.sleep",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
    "os.urandom",
    "os.getenv",
    "os.getrandom",
    "open",
    "print",
    "input",
    "breakpoint",
    "exec",
    "eval",
)

#: Modules that must not even be imported by enclave code: each one is
#: an ambient-nondeterminism or I/O capability.
BANNED_MODULES: Tuple[str, ...] = (
    "random",
    "secrets",
    "socket",
    "subprocess",
    "uuid",
    "urllib",
    "http",
    "requests",
)

#: Sanctioned exceptions: monotonic *metering* clocks (they feed the
#: resource reports, never protocol decisions) and the seeded DRBG.
DEFAULT_ALLOW: Tuple[str, ...] = (
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.thread_time",
    "time.thread_time_ns",
    "repro.crypto.rng",
)


@register
class EnclavePurityRule(Rule):
    rule_id = "R1"
    name = "enclave-purity"
    rationale = (
        "attested enclave code must be replayable and side-effect free: "
        "no ambient clocks, OS entropy, files, sockets or stdout"
    )
    default_scopes = ("enclave", "serve", "fuzz-core")

    def check(self, module: ModuleInfo) -> Iterable[Finding]:
        allow = self.option_tuple("allow", DEFAULT_ALLOW)
        banned_calls = self.option_tuple("banned_calls", BANNED_CALLS)
        banned_modules = self.option_tuple("banned_modules", BANNED_MODULES)
        findings = []
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    root = alias.name.split(".")[0]
                    if root in banned_modules:
                        findings.append(
                            self.finding(
                                module,
                                node,
                                f"enclave scope imports {alias.name!r}: "
                                "ambient nondeterminism/I-O is forbidden "
                                "inside the trust boundary",
                            )
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.level == 0 and node.module:
                    root = node.module.split(".")[0]
                    if root in banned_modules:
                        findings.append(
                            self.finding(
                                module,
                                node,
                                f"enclave scope imports from {node.module!r}: "
                                "ambient nondeterminism/I-O is forbidden "
                                "inside the trust boundary",
                            )
                        )
            elif isinstance(node, ast.Call):
                resolved = call_name(node, module.imports)
                if resolved is None:
                    continue
                if self._allowed(resolved, allow):
                    continue
                if resolved in banned_calls:
                    findings.append(
                        self.finding(
                            module,
                            node,
                            f"enclave scope calls {resolved!r}; use the "
                            "seeded repro.crypto.rng DRBG / sealed storage "
                            "instead of ambient clocks, entropy or I/O",
                        )
                    )
                elif resolved.split(".")[0] in banned_modules:
                    findings.append(
                        self.finding(
                            module,
                            node,
                            f"enclave scope calls {resolved!r} from a "
                            "banned module; enclave randomness must come "
                            "from repro.crypto.rng",
                        )
                    )
        return findings

    @staticmethod
    def _allowed(resolved: str, allow: Tuple[str, ...]) -> bool:
        for entry in allow:
            if resolved == entry or resolved.startswith(entry + "."):
                return True
        return False
