"""Federation assembly: platforms, enclaves, attestation, channels, hosts.

This module performs everything the paper assumes has happened before a
study runs: every GDO's TEE-enabled server is provisioned and remotely
attested, the leader is elected, pairwise secure channels are
established between the leader enclave and every member enclave, and
each member's signed local dataset is verified and sealed by its own
enclave.

The untrusted side of each member is a :class:`GdoHost` — a blind
router that moves encrypted frames between the network and its
enclave's ECALL surface.  Hosts only ever see ciphertext; the audit
tests rely on this separation.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..config import StudyConfig
from ..crypto.rng import DeterministicRng
from ..crypto.signing import MacSigner
from ..errors import ProtocolError
from ..genomics.partition import LocalDataset
from ..genomics.population import Cohort
from ..genomics.vcf import SignedMatrix
from ..net import Envelope, SimulatedNetwork
from ..tee.attestation import AttestationService, Platform
from ..tee.channel import establish_channel
from ..tee.enclave import GuardedEnclaveProxy, guarded
from ..tee.storage import SealedColumnStore
from .enclave_logic import GenDPREnclave
from .integrity import IntegrityMonitor
from .leader import elect_leader

#: Platform monotonic-counter name backing checkpoint freshness epochs.
ROLLBACK_COUNTER = "leader-checkpoint"


@dataclass
class GdoHost:
    """Untrusted middleware of one federation member."""

    gdo_id: str
    enclave: GuardedEnclaveProxy
    network: SimulatedNetwork
    store: Optional[SealedColumnStore] = None
    reference_store: Optional[SealedColumnStore] = None
    #: Wall seconds spent inside this host's enclave answering requests.
    answer_seconds: float = 0.0

    _HANDLERS = {
        "summary": "answer_summary",
        "ld": "answer_ld",
        "lr": "answer_lr",
    }

    def handle_envelope(self, envelope: Envelope) -> Optional[Envelope]:
        """Route one inbound frame into the enclave; maybe produce a reply."""
        if envelope.receiver != self.gdo_id:
            raise ProtocolError(
                f"{self.gdo_id} received a frame addressed to {envelope.receiver}"
            )
        begin = time.perf_counter()
        try:
            if envelope.tag == "retained":
                self.enclave.ecall(
                    "ingest_retained", envelope.body, label="retained"
                )
                return None
            if envelope.tag.startswith("transcript:"):
                # Transcript attestations touch only channel state, not
                # the sealed dataset.  The tag carries the stage
                # ("transcript:<stage>") so each verification round has
                # a unique kind — a Byzantine replay of an earlier
                # round's reply is rejected by tag mismatch instead of
                # reaching the channel and tripping replay protection.
                response = self.enclave.ecall(
                    "answer_transcript", envelope.body, label="transcript"
                )
            else:
                handler = self._HANDLERS.get(envelope.tag)
                if handler is None:
                    raise ProtocolError(
                        f"unknown protocol tag {envelope.tag!r}"
                    )
                if self.store is None:
                    raise ProtocolError(
                        f"{self.gdo_id} has no local dataset"
                    )
                response = self.enclave.ecall(
                    handler, self.store, envelope.body, label=envelope.tag
                )
        finally:
            self.answer_seconds += time.perf_counter() - begin
        return Envelope(
            sender=self.gdo_id,
            receiver=envelope.sender,
            tag=envelope.tag,
            body=response,
        )


@dataclass
class Federation:
    """A fully provisioned GenDPR federation, ready to run a study."""

    config: StudyConfig
    network: SimulatedNetwork
    attestation: AttestationService
    leader_id: str
    hosts: Dict[str, GdoHost]
    enclaves: Dict[str, GenDPREnclave] = field(repr=False, default_factory=dict)
    platforms: Dict[str, Platform] = field(repr=False, default_factory=dict)
    handshake_bytes: int = 0
    #: Dataset-authentication secret, retained so a replacement leader
    #: enclave can be provisioned during failover (never logged).
    data_auth_key: bytes = field(repr=False, default=b"")
    #: Installed :class:`~repro.faults.FaultInjector` for chaos runs.
    fault_injector: Optional[object] = field(repr=False, default=None)
    #: Byzantine-integrity detection ledger for this federation.
    integrity_monitor: IntegrityMonitor = field(
        repr=False, default_factory=IntegrityMonitor
    )
    #: Number of leader replacements performed so far.
    failovers: int = 0

    @property
    def member_ids(self) -> List[str]:
        return sorted(self.hosts)

    @property
    def leader_host(self) -> GdoHost:
        return self.hosts[self.leader_id]

    def resource_reports(self) -> Dict[str, object]:
        return {
            gdo_id: enclave.meter.report()
            for gdo_id, enclave in self.enclaves.items()
        }

    def replace_leader_enclave(self) -> GenDPREnclave:
        """Provision a replacement leader enclave after a crash.

        Automates what ``tests/test_core_recovery.py`` choreographed by
        hand: re-run the (deterministic) election to confirm leadership
        stays with the same GDO — its platform alone can unseal the
        sealed checkpoint and datasets — then start a fresh enclave on
        that platform, mutually re-attest a channel with every member,
        and swap the new guarded proxy into the leader host.  The caller
        (the protocol supervisor) restores state from the latest sealed
        checkpoint afterwards.
        """
        re_elected = elect_leader(
            self.member_ids, self.config.seed, self.config.study_id
        )
        if re_elected != self.leader_id:
            raise ProtocolError(
                f"re-election chose {re_elected!r}, expected {self.leader_id!r}"
            )
        self.failovers += 1
        rng = DeterministicRng(
            f"federation/{self.config.study_id}/{self.config.seed}"
            f"/failover/{self.failovers}"
        )
        replacement = GenDPREnclave(
            platform_key=self.platforms[self.leader_id].root_key,
            enclave_id=self.leader_id,
            data_auth_key=self.data_auth_key,
            rng=rng.fork("enclave"),
        )
        replacement.ecall(
            "configure", _study_params(self.config, self.member_ids, self.leader_id),
            label="failover",
        )
        # The platform's rollback counter survives the crash — the
        # replacement sees its predecessor's checkpoint epochs, which is
        # what makes stale-checkpoint detection work across failovers.
        replacement.install_rollback_counter(
            self.platforms[self.leader_id].monotonic_counter(ROLLBACK_COUNTER)
        )
        if self.fault_injector is not None:
            adversary = self.fault_injector.equivocation_adversary()
            if adversary is not None:
                replacement.install_equivocation_adversary(adversary)
        verifier = self.attestation.verifier()
        for member_id in self.member_ids:
            if member_id == self.leader_id:
                continue
            leader_end, member_end, hs_bytes = establish_channel(
                replacement,
                self.platforms[self.leader_id],
                self.enclaves[member_id],
                self.platforms[member_id],
                verifier,
                rng=rng.fork(f"channel/{member_id}"),
            )
            replacement.install_channel(leader_end)
            self.enclaves[member_id].install_channel(member_end)
            self.handshake_bytes += hs_bytes
        self.enclaves[self.leader_id] = replacement
        interceptor = (
            self.fault_injector.on_ecall if self.fault_injector is not None else None
        )
        self.hosts[self.leader_id].enclave = guarded(replacement, interceptor)
        return replacement


def _study_params(
    config: StudyConfig, member_ids: List[str], leader_id: str
) -> Dict[str, object]:
    """The agreed study parameters every enclave is configured with."""
    return {
        "study_id": config.study_id,
        "snp_count": config.snp_count,
        "maf_cutoff": config.thresholds.maf_cutoff,
        "ld_cutoff": config.thresholds.ld_cutoff,
        "alpha": config.thresholds.false_positive_rate,
        "beta": config.thresholds.power_threshold,
        "member_ids": list(member_ids),
        "leader_id": leader_id,
        "f_values": list(config.collusion.f_values),
    }


def build_federation(
    config: StudyConfig,
    datasets: List[LocalDataset],
    cohort: Cohort,
    *,
    network: Optional[SimulatedNetwork] = None,
) -> Federation:
    """Provision a federation for one study.

    Args:
        config: study parameters (thresholds, collusion policy, seed).
        datasets: one local case shard per member (see
            :func:`repro.genomics.partition.partition_cohort`).
        cohort: the full cohort; only its panel and public reference
            population are used here — case genomes reach members solely
            through their ``datasets`` shard.
        network: optionally a pre-configured simulated network.
    """
    if not datasets:
        raise ProtocolError("a federation needs at least one member")
    config.collusion.validate_for(len(datasets))
    member_ids = sorted(d.gdo_id for d in datasets)
    if len(set(member_ids)) != len(member_ids):
        raise ProtocolError("duplicate GDO ids")

    rng = DeterministicRng(f"federation/{config.study_id}/{config.seed}")
    network = network or SimulatedNetwork()
    attestation = AttestationService(master_secret=rng.bytes(32))
    data_auth_key = rng.bytes(32)
    data_signer = MacSigner(data_auth_key, purpose="vcf-dataset")

    leader_id = elect_leader(member_ids, config.seed, config.study_id)

    fault_injector = None
    ecall_interceptor = None
    if config.faults.enabled:
        # Local import keeps repro.faults optional on the default path.
        from ..faults import FaultInjector, FaultPlan

        fault_injector = FaultInjector(
            FaultPlan.from_config(config.faults), leader_id=leader_id
        )
        network.install_fault_injector(fault_injector)
        ecall_interceptor = fault_injector.on_ecall

    enclaves: Dict[str, GenDPREnclave] = {}
    platforms: Dict[str, Platform] = {}
    hosts: Dict[str, GdoHost] = {}
    for dataset in sorted(datasets, key=lambda d: d.gdo_id):
        platform = attestation.register_platform(f"platform/{dataset.gdo_id}")
        enclave = GenDPREnclave(
            platform_key=platform.root_key,
            enclave_id=dataset.gdo_id,
            data_auth_key=data_auth_key,
            rng=rng.fork(f"enclave/{dataset.gdo_id}"),
        )
        network.register(dataset.gdo_id)
        enclaves[dataset.gdo_id] = enclave
        platforms[dataset.gdo_id] = platform
        hosts[dataset.gdo_id] = GdoHost(
            gdo_id=dataset.gdo_id,
            enclave=guarded(enclave, ecall_interceptor),
            network=network,
        )

    # Mutual attestation: the leader enclave pairs with every member.
    verifier = attestation.verifier()
    handshake_bytes = 0
    for member_id in member_ids:
        if member_id == leader_id:
            continue
        leader_end, member_end, hs_bytes = establish_channel(
            enclaves[leader_id],
            platforms[leader_id],
            enclaves[member_id],
            platforms[member_id],
            verifier,
            rng=rng.fork(f"channel/{member_id}"),
        )
        enclaves[leader_id].install_channel(leader_end)
        enclaves[member_id].install_channel(member_end)
        handshake_bytes += hs_bytes

    # Configure every enclave with the agreed study parameters.
    params = _study_params(config, member_ids, leader_id)
    for enclave in enclaves.values():
        enclave.ecall("configure", params, label="setup")

    # Checkpoint-freshness epochs come from the leader platform's
    # monotonic counter; chaos runs may additionally compromise the
    # leader's broadcast path.
    enclaves[leader_id].install_rollback_counter(
        platforms[leader_id].monotonic_counter(ROLLBACK_COUNTER)
    )
    if fault_injector is not None:
        adversary = fault_injector.equivocation_adversary()
        if adversary is not None:
            enclaves[leader_id].install_equivocation_adversary(adversary)

    # Members verify and seal their signed local datasets (binary fast
    # path; the text SignedVcf container is accepted equivalently).
    for dataset in datasets:
        signed = SignedMatrix.create(dataset.case, data_signer)
        hosts[dataset.gdo_id].store = enclaves[dataset.gdo_id].ecall(
            "load_local_dataset", signed, label="setup"
        )

    # The leader seals the public reference population for streaming.
    hosts[leader_id].reference_store = enclaves[leader_id].ecall(
        "load_reference_matrix",
        cohort.reference.to_bytes(),
        cohort.reference.num_individuals,
        label="setup",
    )

    return Federation(
        config=config,
        network=network,
        attestation=attestation,
        leader_id=leader_id,
        hosts=hosts,
        enclaves=enclaves,
        platforms=platforms,
        handshake_bytes=handshake_bytes,
        data_auth_key=data_auth_key,
        fault_injector=fault_injector,
    )
