"""Deterministic fault plans.

A :class:`FaultPlan` is a *pure function* from protocol coordinates to
fault decisions.  There is no mutable schedule and no shared random
stream: the action applied to the ``i``-th envelope on a link is
derived by hashing ``(seed, sender, receiver, i)`` through
:class:`~repro.crypto.rng.DeterministicRng`.  Two properties follow:

* **Replayability** — re-running a study with the same
  :class:`~repro.config.FaultConfig` injects exactly the same faults,
  so any chaos-suite failure reproduces from its seed alone.
* **Schedule determinism under concurrency** — per-link message indices
  are deterministic even when the parallel execution engine services
  members on worker threads (each worker owns its member's links), so
  thread interleaving cannot change which envelopes are hit.

This mirrors the seeded-exploration idea of coverage-guided fuzzers
(deterministic, replayable schedules instead of ad-hoc sleeps) applied
to a distributed protocol.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Optional, Tuple

from ..config import FaultConfig
from ..crypto.rng import DeterministicRng
from ..errors import ConfigError

#: Fault actions an envelope can draw.  ``None`` (no fault) is implied.
DROP = "drop"
DUPLICATE = "duplicate"
DELAY = "delay"
CORRUPT = "corrupt"
#: Byzantine actions: valid frames played adversarially.
REPLAY = "replay"
WITHHOLD = "withhold"
EQUIVOCATE = "equivocate"

ACTIONS = (DROP, DUPLICATE, DELAY, CORRUPT, REPLAY, WITHHOLD)

#: Resolution of the per-envelope uniform draw.
_DRAW_RESOLUTION = 1_000_000


@dataclass(frozen=True)
class CrashPoint:
    """Tear an enclave down immediately before its N-th proxied ECALL.

    ``ecall_index`` is 1-based and counts only ECALLs dispatched through
    the untrusted :class:`~repro.tee.enclave.GuardedEnclaveProxy` —
    provisioning-time calls made directly on the enclave during
    federation build are not untrusted-host activity and do not count.
    """

    enclave_id: str
    ecall_index: int


@dataclass(frozen=True)
class PartitionWindow:
    """A bounded network partition around one node.

    From OCALL round ``start_round`` (1-based, counted across the whole
    study in execution order) the next ``blocked_ops`` network
    operations touching ``node_id`` fail; afterwards the partition
    heals, so a bounded retry budget can ride it out.
    """

    node_id: str
    start_round: int
    blocked_ops: int


class FaultPlan:
    """Seeded, deterministic fault schedule for one protocol run."""

    def __init__(
        self,
        *,
        seed: int = 0,
        drop_rate: float = 0.0,
        duplicate_rate: float = 0.0,
        delay_rate: float = 0.0,
        corrupt_rate: float = 0.0,
        replay_rate: float = 0.0,
        withhold_rate: float = 0.0,
        withhold_target: str = "",
        equivocate_rate: float = 0.0,
        shard_flip_rate: float = 0.0,
        shard_flip_target: str = "",
        checkpoint_tamper: str = "",
        crash_points: Tuple[CrashPoint, ...] = (),
        partition_windows: Tuple[PartitionWindow, ...] = (),
    ):
        total = (
            drop_rate
            + duplicate_rate
            + delay_rate
            + corrupt_rate
            + replay_rate
            + withhold_rate
        )
        if total > 1.0 + 1e-12:
            raise ConfigError("fault rates must sum to at most 1")
        self.seed = seed
        self.drop_rate = drop_rate
        self.duplicate_rate = duplicate_rate
        self.delay_rate = delay_rate
        self.corrupt_rate = corrupt_rate
        self.replay_rate = replay_rate
        self.withhold_rate = withhold_rate
        self.withhold_target = withhold_target
        self.equivocate_rate = equivocate_rate
        self.shard_flip_rate = shard_flip_rate
        self.shard_flip_target = shard_flip_target
        self.checkpoint_tamper = checkpoint_tamper
        self.crash_points = tuple(crash_points)
        self.partition_windows = tuple(partition_windows)
        # Pre-computed cumulative thresholds on the integer draw.
        self._thresholds = []
        cumulative = 0.0
        for action, rate in (
            (DROP, drop_rate),
            (DUPLICATE, duplicate_rate),
            (DELAY, delay_rate),
            (CORRUPT, corrupt_rate),
            (REPLAY, replay_rate),
            (WITHHOLD, withhold_rate),
        ):
            cumulative += rate
            self._thresholds.append((int(cumulative * _DRAW_RESOLUTION), action))

    @classmethod
    def from_config(cls, config: FaultConfig) -> "FaultPlan":
        """Materialise the plan described by a :class:`FaultConfig`."""
        return cls(
            seed=config.seed,
            drop_rate=config.drop_rate,
            duplicate_rate=config.duplicate_rate,
            delay_rate=config.delay_rate,
            corrupt_rate=config.corrupt_rate,
            replay_rate=config.replay_rate,
            withhold_rate=config.withhold_rate,
            withhold_target=config.withhold_target,
            equivocate_rate=config.equivocate_rate,
            shard_flip_rate=config.shard_flip_rate,
            shard_flip_target=config.shard_flip_target,
            checkpoint_tamper=config.checkpoint_tamper,
            crash_points=tuple(
                CrashPoint(enclave_id, index)
                for enclave_id, index in config.crash_points
            ),
            partition_windows=tuple(
                PartitionWindow(node_id, start_round, blocked_ops)
                for node_id, start_round, blocked_ops in config.partition_windows
            ),
        )

    # -- per-envelope decisions ---------------------------------------------

    def _draw(self, *coordinates: object) -> int:
        label = "faultplan/" + "/".join(str(c) for c in coordinates)
        rng = DeterministicRng(f"{label}#{self.seed}")
        return rng.randbelow(_DRAW_RESOLUTION)

    def action_for(
        self, sender: str, receiver: str, link_index: int
    ) -> Optional[str]:
        """The fault applied to the ``link_index``-th envelope on a link.

        Returns one of :data:`ACTIONS` or ``None``.  Pure and
        order-independent: the answer depends only on the seed and the
        coordinates, never on previously asked questions.
        """
        draw = self._draw("send", sender, receiver, link_index)
        for threshold, action in self._thresholds:
            if draw < threshold:
                return action
        return None

    def corrupt_offset(
        self, sender: str, receiver: str, link_index: int, body_len: int
    ) -> int:
        """Deterministic byte offset to flip when corrupting a frame."""
        if body_len <= 0:
            return 0
        return self._draw("corrupt", sender, receiver, link_index) % body_len

    def equivocate_for(self, stage: str, member: str, attempt: int) -> bool:
        """Whether the compromised broadcaster equivocates toward a member.

        Drawn per ``(stage, member, attempt)``: the same broadcast
        attempt always replays identically, while a post-failover re-run
        (a new attempt) draws afresh — so a detected equivocation can
        resolve into a clean, bit-identical completion.
        """
        draw = self._draw("equivocate", stage, member, attempt)
        return draw < int(self.equivocate_rate * _DRAW_RESOLUTION)

    def shard_flip_for(self, kind: str, shard: int, attempt: int) -> bool:
        """Whether the compromised module falsifies this leaf emission.

        Drawn per ``(kind, shard, attempt)``: each emission of the same
        shard task (including the integrity layer's verification re-run,
        which is a fresh attempt) draws afresh, which is exactly what
        lets the dual-run commitment comparison expose the lie.
        """
        draw = self._draw("shardflip", kind, shard, attempt)
        return draw < int(self.shard_flip_rate * _DRAW_RESOLUTION)

    # -- serialization --------------------------------------------------------

    def to_json(self) -> dict:
        """Canonical JSON document for this plan (the corpus format).

        Since a plan is a pure function of its parameters, the document
        captures the plan *completely*: ``from_json(plan.to_json())``
        draws bit-identical faults at every coordinate.
        """
        return self.describe()

    @classmethod
    def from_json(cls, doc: dict) -> "FaultPlan":
        """Rebuild a plan serialised by :meth:`to_json`."""
        try:
            return cls(
                seed=int(doc["seed"]),
                drop_rate=float(doc["drop_rate"]),
                duplicate_rate=float(doc["duplicate_rate"]),
                delay_rate=float(doc["delay_rate"]),
                corrupt_rate=float(doc["corrupt_rate"]),
                replay_rate=float(doc["replay_rate"]),
                withhold_rate=float(doc["withhold_rate"]),
                withhold_target=str(doc["withhold_target"]),
                equivocate_rate=float(doc["equivocate_rate"]),
                shard_flip_rate=float(doc["shard_flip_rate"]),
                shard_flip_target=str(doc["shard_flip_target"]),
                checkpoint_tamper=str(doc["checkpoint_tamper"]),
                crash_points=tuple(
                    CrashPoint(str(p["enclave_id"]), int(p["ecall_index"]))
                    for p in doc["crash_points"]
                ),
                partition_windows=tuple(
                    PartitionWindow(
                        str(w["node_id"]),
                        int(w["start_round"]),
                        int(w["blocked_ops"]),
                    )
                    for w in doc["partition_windows"]
                ),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ConfigError(f"malformed FaultPlan document: {exc}")

    def digest(self) -> str:
        """SHA-256 over the canonical JSON — the plan's corpus identity.

        Chaos-report records carry this digest so a fuzz-discovered
        seed is traceable from a CI artifact back to its corpus entry.
        """
        canonical = json.dumps(
            self.to_json(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FaultPlan):
            return NotImplemented
        return self.describe() == other.describe()

    def __hash__(self) -> int:
        return hash(self.digest())

    def describe(self) -> dict:
        """Plan parameters as a JSON-friendly document (for reports)."""
        return {
            "seed": self.seed,
            "drop_rate": self.drop_rate,
            "duplicate_rate": self.duplicate_rate,
            "delay_rate": self.delay_rate,
            "corrupt_rate": self.corrupt_rate,
            "replay_rate": self.replay_rate,
            "withhold_rate": self.withhold_rate,
            "withhold_target": self.withhold_target,
            "equivocate_rate": self.equivocate_rate,
            "shard_flip_rate": self.shard_flip_rate,
            "shard_flip_target": self.shard_flip_target,
            "checkpoint_tamper": self.checkpoint_tamper,
            "crash_points": [
                {"enclave_id": p.enclave_id, "ecall_index": p.ecall_index}
                for p in self.crash_points
            ],
            "partition_windows": [
                {
                    "node_id": w.node_id,
                    "start_round": w.start_round,
                    "blocked_ops": w.blocked_ops,
                }
                for w in self.partition_windows
            ],
        }
