"""Membership-inference attacks validate the protocol's guarantees."""

from __future__ import annotations

import numpy as np
import pytest

from repro.attacks import (
    HomerAttack,
    LrAttack,
    collusion_adjusted_frequencies,
    compare_released_vs_withheld,
    evaluate_attack,
)
from repro.errors import GenomicsError
from repro.genomics import SyntheticSpec, generate_cohort


@pytest.fixture(scope="module")
def leaky_cohort():
    """A cohort whose case frequencies deviate strongly (easy target)."""
    spec = SyntheticSpec(
        num_snps=150,
        num_case=500,
        num_control=500,
        case_drift_sd=0.15,
        ld_copy_prob=0.5,
        ld_block_mean_length=2.0,
        seed=31,
    )
    cohort, _ = generate_cohort(spec)
    return cohort


def _frequencies(cohort, snps):
    case = cohort.case.allele_counts(snps) / cohort.case.num_individuals
    ref = cohort.reference.allele_counts(snps) / cohort.reference.num_individuals
    return case, ref


class TestLrAttack:
    def test_detects_members_of_leaky_release(self, leaky_cohort):
        snps = list(range(150))
        case_freq, ref_freq = _frequencies(leaky_cohort, snps)
        attack = LrAttack(
            case_freq, ref_freq, leaky_cohort.reference.array()[:250, snps]
        )
        members = attack.infer_batch(leaky_cohort.case.array()[:, snps])
        outsiders = attack.infer_batch(
            leaky_cohort.reference.array()[250:, snps]
        )
        assert members.mean() > 0.8
        assert outsiders.mean() < 0.3

    def test_single_genotype_api(self, leaky_cohort):
        snps = list(range(150))
        case_freq, ref_freq = _frequencies(leaky_cohort, snps)
        attack = LrAttack(
            case_freq, ref_freq, leaky_cohort.reference.array()[:, snps]
        )
        decision = attack.infer(leaky_cohort.case.array()[0, snps])
        assert decision.score == pytest.approx(
            attack.score(leaky_cohort.case.array()[0, snps])
        )
        assert decision.inferred_member == (decision.score > decision.threshold)

    def test_validation(self, leaky_cohort):
        with pytest.raises(GenomicsError):
            LrAttack(
                np.array([0.5]),
                np.array([0.5, 0.5]),
                leaky_cohort.reference.array()[:, :2],
            )
        with pytest.raises(GenomicsError):
            LrAttack(
                np.array([1.5, 0.5]),
                np.array([0.5, 0.5]),
                leaky_cohort.reference.array()[:, :2],
            )


class TestHomerAttack:
    def test_detects_members_of_leaky_release(self, leaky_cohort):
        snps = list(range(150))
        case_freq, ref_freq = _frequencies(leaky_cohort, snps)
        attack = HomerAttack(
            case_freq, ref_freq, leaky_cohort.reference.array()[:250, snps]
        )
        members = attack.infer_batch(leaky_cohort.case.array()[:, snps])
        assert members.mean() > 0.6

    def test_lr_at_least_as_strong_as_homer(self, leaky_cohort):
        """SG's empirical claim: the LR-test dominates Homer's statistic."""
        snps = list(range(150))
        lr = evaluate_attack(leaky_cohort, snps, detector=LrAttack)
        homer = evaluate_attack(leaky_cohort, snps, detector=HomerAttack)
        assert lr.advantage >= homer.advantage - 0.05


class TestEvaluation:
    def test_false_positive_rate_near_alpha(self, leaky_cohort):
        evaluation = evaluate_attack(leaky_cohort, list(range(150)), alpha=0.1)
        assert evaluation.false_positive_rate < 0.3

    def test_validation(self, leaky_cohort):
        with pytest.raises(GenomicsError):
            evaluate_attack(leaky_cohort, [])
        with pytest.raises(GenomicsError):
            evaluate_attack(leaky_cohort, [1], holdout_fraction=0.0)

    def test_compare_released_vs_withheld(self, leaky_cohort):
        outcome = compare_released_vs_withheld(
            leaky_cohort, released=[0, 1, 2], candidate_pool=list(range(10))
        )
        assert outcome["released"] is not None
        assert outcome["withheld"] is not None
        assert outcome["withheld"].snps == tuple(range(3, 10))


class TestProtocolGuarantee:
    def test_gendpr_release_resists_lr_attack(
        self, small_cohort, study_result, study_config
    ):
        """The headline privacy validation: attacking the actually
        released SNP set keeps the detector's power below the study's
        configured threshold."""
        evaluation = evaluate_attack(
            small_cohort,
            study_result.l_safe,
            alpha=study_config.thresholds.false_positive_rate,
        )
        assert (
            evaluation.power
            <= study_config.thresholds.power_threshold + 0.05
        )

    def test_collusion_adjustment(self, small_cohort):
        """Colluders isolating honest members' frequencies: arithmetic."""
        counts = small_cohort.case.allele_counts()
        total = small_cohort.case.num_individuals
        colluder = small_cohort.case.select_individuals(range(100))
        freqs, remaining = collusion_adjusted_frequencies(
            counts, total, [colluder.allele_counts()], [100]
        )
        assert remaining == total - 100
        honest = small_cohort.case.select_individuals(range(100, total))
        expected = honest.allele_counts() / remaining
        assert np.allclose(freqs, expected)

    def test_collusion_adjustment_validation(self, small_cohort):
        counts = small_cohort.case.allele_counts()
        total = small_cohort.case.num_individuals
        with pytest.raises(GenomicsError):
            collusion_adjusted_frequencies(counts, total, [counts], [total])
        with pytest.raises(GenomicsError):
            collusion_adjusted_frequencies(
                counts, total, [counts + 100], [10]
            )
