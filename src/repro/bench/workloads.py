"""Paper-scenario workload builders.

The evaluation (Section 7) uses the dbGaP AMD cohort — 14,860 case and
13,035 control genomes — over 1,000 to 10,000 SNPs, split equally among
2 to 7 GDOs.  These builders reproduce every configuration with two
substitutions recorded in DESIGN.md / EXPERIMENTS.md:

* genomes are synthetic (:mod:`repro.genomics.synthetic`), and
* population sizes are multiplied by ``REPRO_BENCH_SCALE`` (default
  0.1) because the paper's enclaves are compiled C/C++ while this
  reproduction is pure Python; the scale factor shrinks wall time while
  preserving every ratio the figures are about.  Set
  ``REPRO_BENCH_SCALE=1`` for full-size runs.

Cohorts are cached per (case-size, SNP-count) so the 2/3/5/7-GDO runs
of one figure share the same data, exactly as in the paper.
"""

from __future__ import annotations

import os
from typing import Dict, Tuple

from ..config import CollusionPolicy, PrivacyThresholds, StudyConfig
from ..genomics.population import Cohort
from ..genomics.synthetic import SyntheticSpec, SyntheticTruth, generate_cohort

#: Population sizes of the dbGaP phs001039.v1.p1 dataset the paper used.
PAPER_CASE_FULL = 14_860
PAPER_CASE_HALF = 7_430
PAPER_CONTROL = 13_035

#: SNP-set sizes of Table 4.
PAPER_SNP_COUNTS = (1_000, 2_500, 5_000, 10_000)
#: Federation sizes of Figures 5/6 and Table 3.
PAPER_GDO_COUNTS = (2, 3, 5, 7)
#: Federation sizes of Table 5.
PAPER_COLLUSION_GDO_COUNTS = (3, 4, 5)

#: SecureGenome verification settings adopted by the paper.
PAPER_THRESHOLDS = PrivacyThresholds(
    maf_cutoff=0.05,
    ld_cutoff=1e-5,
    false_positive_rate=0.1,
    power_threshold=0.9,
)

_DEFAULT_SCALE = 0.1
_COHORT_CACHE: Dict[Tuple[int, int, int], Tuple[Cohort, SyntheticTruth]] = {}

#: Case-frequency drift coefficient: per-SNP drift is K / sqrt(L_des).
#: The LR detector's cumulative signal grows with the number of retained
#: SNPs, so keeping the *total* leakage of a cohort roughly constant
#: across panel sizes (as it is in a real dataset, where the biology
#: does not change with the analyst's panel choice) requires per-SNP
#: drift to shrink as the panel grows.  K is calibrated so the full-
#: federation (f = 0) verification ends just below the 0.9 power
#: threshold — the regime the paper's cohort sits in, which is what
#: makes collusion combinations reject a visible minority of SNPs
#: (Table 5) while f = 0 retains everything (Table 4).
DRIFT_COEFFICIENT = 1.2
#: Per-site stratification: the paper's federation spans geographically
#: distant biocenters, so each collection site's allele frequencies
#: deviate from the pooled case frequencies by this (fixed, panel-size
#: independent) per-SNP standard deviation — Fst-scale heterogeneity.
SITE_EFFECT_SD = 0.04
#: Collection sites in the synthetic cohort (independent of G so the
#: same cohort serves every federation size, as in the paper).
NUM_SITES = 12


def bench_scale() -> float:
    """The population scale factor (env ``REPRO_BENCH_SCALE``)."""
    return float(os.environ.get("REPRO_BENCH_SCALE", _DEFAULT_SCALE))


def scaled(size: int, scale: float | None = None) -> int:
    """A paper population size under the bench scale (min 50)."""
    factor = bench_scale() if scale is None else scale
    return max(50, int(round(size * factor)))


def paper_cohort(
    num_case: int, num_snps: int, *, scale: float | None = None, seed: int = 2022
) -> Tuple[Cohort, SyntheticTruth]:
    """The (scaled) cohort for one paper configuration, cached.

    ``num_case`` is the *paper* case count (7,430 or 14,860); the
    control population (which doubles as the LR-test reference, as in
    the paper) is always the scaled 13,035.
    """
    case = scaled(num_case, scale)
    control = scaled(PAPER_CONTROL, scale)
    key = (case, control, num_snps)
    if key not in _COHORT_CACHE:
        spec = SyntheticSpec(
            num_snps=num_snps,
            num_case=case,
            num_control=control,
            seed=seed,
            case_drift_sd=DRIFT_COEFFICIENT / num_snps**0.5,
            num_sites=NUM_SITES,
            site_effect_sd=SITE_EFFECT_SD,
        )
        _COHORT_CACHE[key] = generate_cohort(spec)
    return _COHORT_CACHE[key]


def paper_config(
    num_snps: int,
    *,
    study_id: str,
    collusion: CollusionPolicy | None = None,
    seed: int = 0,
) -> StudyConfig:
    """A study configuration with the paper's SecureGenome thresholds."""
    return StudyConfig(
        snp_count=num_snps,
        thresholds=PAPER_THRESHOLDS,
        collusion=collusion or CollusionPolicy.none(),
        seed=seed,
        study_id=study_id,
    )


def clear_cohort_cache() -> None:
    """Drop cached cohorts (used by tests that tweak the scale)."""
    _COHORT_CACHE.clear()
