"""Configuration objects for GenDPR studies.

The thresholds mirror the SecureGenome settings the paper adopts in its
evaluation (Section 7): MAF cut-off 0.05, LD cut-off 1e-5 (p-value on the
r-squared statistic), false-positive rate 0.1 and identification-power
threshold 0.9 for the likelihood-ratio test.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple

from .errors import CollusionConfigError, ConfigError

#: SecureGenome defaults used throughout the paper's evaluation.
DEFAULT_MAF_CUTOFF = 0.05
DEFAULT_LD_CUTOFF = 1e-5
DEFAULT_FALSE_POSITIVE_RATE = 0.1
DEFAULT_POWER_THRESHOLD = 0.9


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ConfigError(message)


@dataclass(frozen=True)
class PrivacyThresholds:
    """Cut-off parameters for the three verification phases.

    Attributes:
        maf_cutoff: minimum global minor-allele frequency for a SNP to be
            retained in Phase 1.  SNPs rarer than this form characteristic
            outliers exploitable by membership attacks.
        ld_cutoff: p-value threshold on the pairwise r-squared statistic in
            Phase 2.  A p-value *below* the cut-off marks the pair as
            dependent (high LD), so only the better chi-squared-ranked SNP
            of the pair is kept.
        false_positive_rate: tolerated false-positive rate (alpha) of the
            LR-test membership detector in Phase 3.
        power_threshold: maximum tolerated identification power (beta) of
            that detector; the released subset must keep empirical power
            below this value.
    """

    maf_cutoff: float = DEFAULT_MAF_CUTOFF
    ld_cutoff: float = DEFAULT_LD_CUTOFF
    false_positive_rate: float = DEFAULT_FALSE_POSITIVE_RATE
    power_threshold: float = DEFAULT_POWER_THRESHOLD

    def __post_init__(self) -> None:
        _require(0.0 <= self.maf_cutoff < 0.5, "maf_cutoff must be in [0, 0.5)")
        _require(0.0 < self.ld_cutoff < 1.0, "ld_cutoff must be in (0, 1)")
        _require(
            0.0 < self.false_positive_rate < 1.0,
            "false_positive_rate must be in (0, 1)",
        )
        _require(
            0.0 < self.power_threshold <= 1.0,
            "power_threshold must be in (0, 1]",
        )


@dataclass(frozen=True)
class CollusionPolicy:
    """How many honest-but-curious colluders the federation tolerates.

    ``f_values`` lists every collusion size the verification must survive.
    The paper's static setting corresponds to a single value (``f=2``) while
    the conservative mode enumerates ``f = 1 .. G-1``.  ``f = 0`` (the empty
    tuple) disables collusion tolerance.
    """

    f_values: Tuple[int, ...] = ()

    def __post_init__(self) -> None:
        for f in self.f_values:
            if f < 0:
                raise CollusionConfigError("collusion sizes must be non-negative")
        if len(set(self.f_values)) != len(self.f_values):
            raise CollusionConfigError("duplicate collusion sizes")

    @classmethod
    def none(cls) -> "CollusionPolicy":
        """No collusion tolerance (the paper's ``f = 0`` experiments)."""
        return cls(())

    @classmethod
    def static(cls, f: int) -> "CollusionPolicy":
        """Tolerate exactly ``f`` colluders (paper's ``f = k`` rows)."""
        if f <= 0:
            raise CollusionConfigError("static collusion size must be positive")
        return cls((f,))

    @classmethod
    def conservative(cls, num_members: int) -> "CollusionPolicy":
        """Tolerate every possible collusion, ``f = {1, ..., G-1}``."""
        if num_members < 2:
            raise CollusionConfigError(
                "conservative policy needs at least two federation members"
            )
        return cls(tuple(range(1, num_members)))

    @property
    def enabled(self) -> bool:
        return bool(self.f_values)

    def validate_for(self, num_members: int) -> None:
        """Check every requested ``f`` is feasible for ``num_members`` GDOs."""
        for f in self.f_values:
            if f >= num_members:
                raise CollusionConfigError(
                    f"cannot tolerate f={f} colluders among G={num_members} members"
                )


#: Supported federation execution modes.
EXECUTION_MODES = ("sequential", "parallel")


@dataclass(frozen=True)
class ExecutionConfig:
    """How the simulated federation executes member work within a round.

    The paper's evaluation assumes the ``G`` member enclaves compute
    concurrently on separate servers.  ``parallel`` makes the simulation
    do the same — each OCALL round fans member frames out to a thread
    pool (numpy and hashlib release the GIL on the hot paths) — while
    ``sequential`` keeps the original one-member-at-a-time loop.  Both
    modes produce bit-identical study outcomes; only wall-clock and the
    round-accounting reconciliation differ (see ``docs/PERFORMANCE.md``).

    Attributes:
        mode: ``"sequential"`` or ``"parallel"``.
        max_workers: thread-pool width for parallel rounds; defaults to
            one worker per member when unset.
    """

    mode: str = "sequential"
    max_workers: Optional[int] = None

    def __post_init__(self) -> None:
        _require(
            self.mode in EXECUTION_MODES,
            f"execution mode must be one of {EXECUTION_MODES}, got {self.mode!r}",
        )
        if self.max_workers is not None:
            _require(self.max_workers > 0, "max_workers must be positive")

    @classmethod
    def sequential(cls) -> "ExecutionConfig":
        return cls(mode="sequential")

    @classmethod
    def parallel(cls, max_workers: Optional[int] = None) -> "ExecutionConfig":
        return cls(mode="parallel", max_workers=max_workers)

    @property
    def is_parallel(self) -> bool:
        return self.mode == "parallel"


@dataclass(frozen=True)
class ObservabilityConfig:
    """Tracing/metrics switches of one run (see ``docs/OBSERVABILITY.md``).

    Disabled by default.  While disabled, every instrumentation point in
    the stack degrades to a single attribute lookup against the shared
    null sink — no spans, no metrics, no allocations — so observability
    can stay compiled-in everywhere.

    Attributes:
        enabled: record spans/metrics and attach a
            :class:`~repro.obs.RunReport` to the study result.
        capture_messages: also record one point event per network
            envelope (the highest-volume span source; switch off for
            long runs where only phase/ECALL granularity matters).
        max_spans: optional cap on collected spans; excess spans are
            counted as dropped instead of stored, bounding memory.
    """

    enabled: bool = False
    capture_messages: bool = True
    max_spans: Optional[int] = None

    def __post_init__(self) -> None:
        if self.max_spans is not None:
            _require(self.max_spans > 0, "max_spans must be positive")

    @classmethod
    def off(cls) -> "ObservabilityConfig":
        """The default: everything disabled."""
        return cls()

    @classmethod
    def tracing(
        cls,
        *,
        capture_messages: bool = True,
        max_spans: Optional[int] = None,
    ) -> "ObservabilityConfig":
        """Full tracing, as used by ``repro run --trace``."""
        return cls(
            enabled=True, capture_messages=capture_messages, max_spans=max_spans
        )


@dataclass(frozen=True)
class StudyConfig:
    """Full configuration of one GenDPR study.

    Attributes:
        snp_count: size of the desired SNP set ``L_des``.
        thresholds: privacy cut-offs for the three phases.
        collusion: collusion-tolerance policy.
        seed: seed for the protocol's randomness (leader election).  The
            genomic data carries its own seed; this one only drives
            protocol-level choices so runs are reproducible.
        study_id: free-form identifier included in protocol messages.
        observability: tracing/metrics switches; excluded from the
            run's config fingerprint because it cannot affect outcomes.
        execution: sequential vs parallel round execution; also excluded
            from the fingerprint — both modes yield bit-identical
            outcomes (enforced by tests).
    """

    snp_count: int
    thresholds: PrivacyThresholds = field(default_factory=PrivacyThresholds)
    collusion: CollusionPolicy = field(default_factory=CollusionPolicy.none)
    seed: int = 0
    study_id: str = "study-0"
    observability: ObservabilityConfig = field(
        default_factory=ObservabilityConfig
    )
    execution: ExecutionConfig = field(default_factory=ExecutionConfig)

    def __post_init__(self) -> None:
        _require(self.snp_count > 0, "snp_count must be positive")
        _require(bool(self.study_id), "study_id must be non-empty")


@dataclass(frozen=True)
class NetworkProfile:
    """Latency/bandwidth model of the simulated inter-site network.

    The defaults model a wide-area research network; the zero profile is
    used when the benchmarks measure pure computation.
    """

    latency_s: float = 0.0
    bandwidth_bytes_per_s: Optional[float] = None

    def __post_init__(self) -> None:
        _require(self.latency_s >= 0.0, "latency must be non-negative")
        if self.bandwidth_bytes_per_s is not None:
            _require(self.bandwidth_bytes_per_s > 0, "bandwidth must be positive")

    def transfer_time(self, num_bytes: int) -> float:
        """Simulated seconds to move ``num_bytes`` across one link."""
        time = self.latency_s
        if self.bandwidth_bytes_per_s is not None:
            time += num_bytes / self.bandwidth_bytes_per_s
        return time


def equal_partition_sizes(total: int, parts: int) -> Sequence[int]:
    """Sizes of an as-equal-as-possible split of ``total`` into ``parts``.

    The paper divides genomes equally among federation members; when the
    division is not exact the first ``total % parts`` members receive one
    extra genome.
    """
    if parts <= 0:
        raise ConfigError("parts must be positive")
    if total < 0:
        raise ConfigError("total must be non-negative")
    base, extra = divmod(total, parts)
    return [base + (1 if i < extra else 0) for i in range(parts)]
