"""Human and machine-readable rendering of a lint run.

The JSON document is the CI artifact: schema below, asserted by
``tests/test_lint_engine.py`` and documented in
``docs/STATIC_ANALYSIS.md``.

.. code-block:: text

    {
      "version": 2,
      "tool": "repro.lint",
      "paths": ["src"],
      "clean": true,
      "rules": {"R1": {"name": …, "rationale": …, …}, …},   # ran only
      "scopes": {"enclave": ["repro.tee", …], …},
      "findings": [{rule, severity, path, module, line, column,
                    message, fingerprint}, …],
      "baselined": [{…same shape as findings…}, …],
      "declassifications": [{target, caller, module, path, line,
                             reason, marked}, …],   # [] without --flow
      "summary": {"files_scanned": n, "findings": n, "errors": n,
                  "suppressed_inline": n, "baselined": n,
                  "unused_baseline_entries": n,
                  "by_rule": {…}, "by_severity": {…}}
    }

Version history: v1 had no ``baselined``/``declassifications`` arrays
and listed every registered rule; v2 lists only the rules that ran
(the flow rules R6-R8 are absent without ``--flow``).
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence

from .config import LintConfig
from .engine import LintResult
from .rules import rule_catalog

REPORT_VERSION = 2


def json_report(
    result: LintResult, config: LintConfig, paths: Sequence[str]
) -> Dict[str, Any]:
    """The machine-readable run report (CI artifact)."""
    catalog = rule_catalog()
    ran = set(result.rules_run)
    return {
        "version": REPORT_VERSION,
        "tool": "repro.lint",
        "paths": list(paths),
        "clean": result.clean,
        "rules": {
            rule_id: meta
            for rule_id, meta in catalog.items()
            if not ran or rule_id in ran
        },
        "scopes": config.scope_map.as_dict(),
        "findings": [finding.as_dict() for finding in result.findings],
        "baselined": [
            finding.as_dict() for finding in result.baselined_findings
        ],
        "declassifications": list(
            result.artifacts.get("declassifications", [])
        ),
        "summary": {
            "files_scanned": result.files_scanned,
            "findings": len(result.findings),
            "errors": len(result.errors),
            "suppressed_inline": result.suppressed_inline,
            "baselined": result.baselined,
            "unused_baseline_entries": len(result.unused_baseline_entries),
            "by_rule": result.by_rule(),
            "by_severity": result.by_severity(),
        },
    }


def human_report(result: LintResult) -> str:
    """Terminal rendering: findings first, then a one-screen summary."""
    lines: List[str] = []
    for finding in result.findings:
        lines.append(finding.render())
    if result.findings:
        lines.append("")
    lines.append(
        f"{result.files_scanned} files scanned, "
        f"{len(result.findings)} finding(s) "
        f"({len(result.errors)} error(s)), "
        f"{result.suppressed_inline} inline-suppressed, "
        f"{result.baselined} baselined"
    )
    if result.unused_baseline_entries:
        lines.append(
            f"warning: {len(result.unused_baseline_entries)} stale baseline "
            "entrie(s) no longer match anything — prune the baseline:"
        )
        for entry in result.unused_baseline_entries:
            lines.append(
                f"  - {entry.get('rule')} {entry.get('module')}: "
                f"{entry.get('content')!r}"
            )
    by_rule = result.by_rule()
    if by_rule:
        breakdown = ", ".join(
            f"{rule}: {count}" for rule, count in sorted(by_rule.items())
        )
        lines.append(f"by rule: {breakdown}")
    lines.append("clean" if result.clean else "FAILED")
    return "\n".join(lines)
