"""SNP-range shard planner and aggregation tree (repro.core.shard)."""

from __future__ import annotations

import pytest

from repro.config import ResilienceConfig, ShardingConfig, StudyConfig
from repro.core.shard import (
    AggregationTree,
    aggregation_tree,
    plan_shards,
)
from repro.errors import ConfigError, ProtocolError
from repro.obs import config_fingerprint

MEMBERS = ("gdo-0", "gdo-1", "gdo-2", "gdo-3", "gdo-4")


class TestPlanShards:
    @pytest.mark.parametrize("snps,shards", [(10, 1), (10, 3), (97, 8), (8, 8)])
    def test_ranges_tile_the_snp_axis(self, snps, shards):
        """Contiguous, in-order, gap-free cover of [0, L)."""
        plan = plan_shards(snps, shards, MEMBERS)
        assert plan.num_shards == shards
        cursor = 0
        for index, shard in enumerate(plan.ranges):
            assert shard.index == index
            assert shard.start == cursor
            assert shard.stop > shard.start
            cursor = shard.stop
        assert cursor == snps
        covered = [c for shard in plan.ranges for c in shard.columns()]
        assert covered == list(range(snps))

    def test_widths_as_equal_as_possible(self):
        plan = plan_shards(97, 8, MEMBERS)
        widths = [shard.width for shard in plan.ranges]
        assert sum(widths) == 97
        assert max(widths) - min(widths) <= 1
        assert plan.max_width == max(widths)

    def test_owners_round_robin_over_sorted_members(self):
        plan = plan_shards(100, 7, ["b", "c", "a"])
        owners = [shard.owner for shard in plan.ranges]
        assert owners == ["a", "b", "c", "a", "b", "c", "a"]

    def test_deterministic_and_order_insensitive(self):
        one = plan_shards(64, 4, ("g1", "g0", "g2"))
        two = plan_shards(64, 4, ("g2", "g1", "g0"))
        assert one == two
        assert one.digest() == two.digest()

    def test_digest_changes_with_shard_count(self):
        assert (
            plan_shards(64, 2, MEMBERS).digest()
            != plan_shards(64, 4, MEMBERS).digest()
        )

    def test_shard_of_column(self):
        plan = plan_shards(10, 3, MEMBERS)
        for column in range(10):
            shard = plan.shard_of_column(column)
            assert shard.start <= column < shard.stop
        with pytest.raises(ProtocolError):
            plan.shard_of_column(10)
        with pytest.raises(ProtocolError):
            plan.shard_of_column(-1)

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ConfigError):
            plan_shards(0, 1, MEMBERS)
        with pytest.raises(ConfigError):
            plan_shards(10, 11, MEMBERS)
        with pytest.raises(ConfigError):
            plan_shards(10, 0, MEMBERS)
        with pytest.raises(ConfigError):
            plan_shards(10, 2, [])
        with pytest.raises(ConfigError):
            plan_shards(10, 2, ["dup", "dup"])


class TestAggregationTree:
    def test_root_leads_sorted_others(self):
        tree = aggregation_tree(MEMBERS, root="gdo-2")
        assert tree.nodes[0] == "gdo-2"
        assert list(tree.nodes[1:]) == ["gdo-0", "gdo-1", "gdo-3", "gdo-4"]

    def test_root_must_be_a_member(self):
        with pytest.raises(ConfigError):
            aggregation_tree(MEMBERS, root="intruder")

    @pytest.mark.parametrize(
        "size,depth", [(1, 0), (2, 1), (3, 1), (4, 2), (7, 2), (8, 3)]
    )
    def test_depth_is_log2(self, size, depth):
        members = [f"m{i}" for i in range(size)]
        tree = aggregation_tree(members, root="m0")
        assert tree.depth == depth

    def test_parent_child_consistency(self):
        tree = aggregation_tree(MEMBERS, root="gdo-0")
        with pytest.raises(ProtocolError):
            tree.parent("gdo-0")
        for node in tree.nodes[1:]:
            assert node in tree.children(tree.parent(node))
        for node in tree.nodes:
            assert len(tree.children(node)) <= 2
            for child in tree.children(node):
                assert tree.parent(child) == node

    def test_levels_schedule_every_non_root_once_deepest_first(self):
        tree = aggregation_tree([f"m{i}" for i in range(7)], root="m0")
        levels = tree.levels()
        assert len(levels) == tree.depth
        emitted = [child for level in levels for child, _parent in level]
        assert sorted(emitted) == sorted(tree.nodes[1:])
        # A child may only emit after its own children have emitted.
        seen = set()
        for level in levels:
            children_this_level = {child for child, _ in level}
            for child, parent in level:
                assert parent == tree.parent(child)
                for grandchild in tree.children(child):
                    assert grandchild in seen
            assert len(children_this_level) == len(level), "distinct children"
            seen |= children_this_level

    def test_single_node_tree_has_no_edges(self):
        tree = AggregationTree(root="solo", nodes=("solo",))
        assert tree.depth == 0
        assert tree.levels() == []
        assert tree.children("solo") == ()


class TestShardingConfig:
    def test_defaults_off(self):
        assert not ShardingConfig.off().enabled
        assert ShardingConfig.over(4).enabled
        assert not ShardingConfig.over(1).enabled

    def test_num_shards_bounded_by_snp_count(self):
        with pytest.raises(ConfigError):
            StudyConfig(
                snp_count=3,
                sharding=ShardingConfig.over(4),
                study_id="too-many-shards",
            )

    def test_sharding_composes_with_resilience(self):
        """Supervised sharding is allowed; it needs a retry budget."""
        config = StudyConfig(
            snp_count=100,
            sharding=ShardingConfig.over(2),
            resilience=ResilienceConfig.supervised(),
            study_id="shards-with-resilience",
        )
        assert config.sharding.enabled and config.resilience.enabled
        # Combine edges must be able to retry at least once before a
        # member is declared unresponsive.
        with pytest.raises(ConfigError):
            StudyConfig(
                snp_count=100,
                sharding=ShardingConfig.over(2),
                resilience=ResilienceConfig.supervised(max_attempts=1),
                study_id="shards-without-retries",
            )

    def test_shard_epoch_rotates_layout_deterministically(self):
        base = plan_shards(100, 4, MEMBERS)
        repaired = plan_shards(100, 4, MEMBERS, epoch=1)
        # Ranges (and therefore wire shapes) are epoch-invariant; only
        # the owner rotation and the digest change.
        assert [(s.start, s.stop) for s in base.ranges] == [
            (s.start, s.stop) for s in repaired.ranges
        ]
        assert [s.owner for s in base.ranges] != [
            s.owner for s in repaired.ranges
        ]
        assert base.digest() != repaired.digest()
        assert plan_shards(100, 4, MEMBERS, epoch=1).digest() == repaired.digest()
        assert plan_shards(100, 4, MEMBERS, epoch=0).digest() == base.digest()
        with pytest.raises(ConfigError):
            plan_shards(100, 4, MEMBERS, epoch=-1)

    def test_tree_epoch_keeps_root_and_reshapes_interior(self):
        base = aggregation_tree(MEMBERS, root="gdo-0")
        repaired = aggregation_tree(MEMBERS, root="gdo-0", epoch=1)
        assert repaired.root == base.root == "gdo-0"
        assert sorted(repaired.nodes) == sorted(base.nodes)
        assert repaired.nodes != base.nodes
        # Epoch rotation wraps around the non-root order.
        full_turn = aggregation_tree(
            MEMBERS, root="gdo-0", epoch=len(MEMBERS) - 1
        )
        assert full_turn.nodes == base.nodes
        with pytest.raises(ConfigError):
            aggregation_tree(MEMBERS, root="gdo-0", epoch=-1)

    def test_fingerprint_records_shard_count(self):
        """Sharding is part of the study identity, unlike execution mode."""
        flat = StudyConfig(snp_count=100, study_id="fp")
        sharded = StudyConfig(
            snp_count=100, sharding=ShardingConfig.over(4), study_id="fp"
        )
        assert config_fingerprint(flat) != config_fingerprint(sharded)
