"""The SecureGenome likelihood-ratio test (Phase 3 mathematics).

The LR statistic of individual ``n`` over a SNP set ``S`` is (paper
Equation 1)::

    LR_n = sum over l in S of [ x_nl * log(phat_l / p_l)
                                + (1 - x_nl) * log((1 - phat_l)/(1 - p_l)) ]

where ``p_l`` is the allele frequency in the public reference set and
``phat_l`` in the case population.  An adversary holding a victim's
genotype computes this score and decides "victim participated" when it
exceeds a threshold calibrated on the reference population.

GenDPR distributes the computation: each member builds the **LR-matrix**
of per-individual, per-SNP contributions for its local case genomes
(using the *global* frequency vectors broadcast by the leader), and the
leader merges the matrices and searches for the largest subset of SNPs
whose empirical identification power stays below the configured
threshold.  Because every quantity here is either elementwise (matrix
entries, row sums) or a population fraction, merging local matrices
yields bit-identical decisions to the centralized computation — the
invariant Table 4 demonstrates and our tests enforce.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..errors import GenomicsError

#: Frequencies are clipped into [FREQ_EPS, 1-FREQ_EPS] before taking logs.
FREQ_EPS = 1e-6


def clip_frequencies(frequencies: np.ndarray) -> np.ndarray:
    """Clip frequencies away from {0, 1} so log-ratios stay finite."""
    return np.clip(np.asarray(frequencies, dtype=np.float64), FREQ_EPS, 1 - FREQ_EPS)


def lr_weights(
    case_frequencies: np.ndarray, reference_frequencies: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Per-SNP log weights ``(w1, w0)`` of carrying / not carrying the allele.

    ``w1_l = log(phat_l / p_l)``, ``w0_l = log((1-phat_l) / (1-p_l))``.
    """
    phat = clip_frequencies(case_frequencies)
    p = clip_frequencies(reference_frequencies)
    if phat.shape != p.shape:
        raise GenomicsError("frequency vectors have different lengths")
    return np.log(phat / p), np.log((1 - phat) / (1 - p))


def lr_matrix(
    genotypes: np.ndarray,
    case_frequencies: np.ndarray,
    reference_frequencies: np.ndarray,
) -> np.ndarray:
    """Per-individual, per-SNP LR contributions (the paper's LR-matrix).

    Args:
        genotypes: ``N x L`` binary array of one population's genotypes.
        case_frequencies: global case allele frequencies over the same L
            SNPs (the leader's ``casesAlleleFreq`` broadcast).
        reference_frequencies: reference-set frequencies (``refAlleleFreq``).

    Returns:
        ``N x L`` float64 matrix ``M`` with
        ``M[n, l] = x_nl * w1_l + (1 - x_nl) * w0_l``; the LR score of
        individual ``n`` over any subset is the corresponding row-sum.
    """
    data = np.asarray(genotypes)
    if data.ndim != 2:
        raise GenomicsError("genotypes must be a 2-D array")
    w1, w0 = lr_weights(case_frequencies, reference_frequencies)
    if data.shape[1] != w1.shape[0]:
        raise GenomicsError(
            f"genotypes cover {data.shape[1]} SNPs, frequencies {w1.shape[0]}"
        )
    x = data.astype(np.float64)
    return x * w1 + (1.0 - x) * w0


def lr_matrix_scalar(
    genotypes: np.ndarray,
    case_frequencies: np.ndarray,
    reference_frequencies: np.ndarray,
) -> np.ndarray:
    """Entry-by-entry loop reference of :func:`lr_matrix` (test oracle).

    Builds the same weights, then fills ``M[n, l]`` one scalar at a
    time in the kernel's operation order — the property tests assert
    element-wise identity with the vectorised matrix.
    """
    data = np.asarray(genotypes)
    if data.ndim != 2:
        raise GenomicsError("genotypes must be a 2-D array")
    w1, w0 = lr_weights(case_frequencies, reference_frequencies)
    if data.shape[1] != w1.shape[0]:
        raise GenomicsError(
            f"genotypes cover {data.shape[1]} SNPs, frequencies {w1.shape[0]}"
        )
    out = np.empty(data.shape, dtype=np.float64)
    for row in range(data.shape[0]):
        for col in range(data.shape[1]):
            x = float(data[row, col])
            out[row, col] = x * w1[col] + (1.0 - x) * w0[col]
    return out


def lr_scores(matrix: np.ndarray, columns: Optional[Sequence[int]] = None) -> np.ndarray:
    """LR score per individual over a column subset (default: all)."""
    m = np.asarray(matrix, dtype=np.float64)
    if columns is not None:
        m = m[:, list(columns)]
    return m.sum(axis=1)


def detection_threshold(reference_scores: np.ndarray, alpha: float) -> float:
    """Score threshold giving false-positive rate ``alpha`` on the reference.

    Deterministic upper empirical quantile: the smallest reference score
    such that at most ``alpha`` of the reference population scores above
    it.  Both the safety verification and the attack evaluation use this
    same calibration, so "power below threshold" has one meaning.
    """
    if not 0 < alpha < 1:
        raise GenomicsError("alpha must be in (0, 1)")
    scores = np.sort(np.asarray(reference_scores, dtype=np.float64))
    if scores.size == 0:
        raise GenomicsError("reference scores are empty")
    rank = int(np.ceil((1.0 - alpha) * scores.size)) - 1
    rank = min(max(rank, 0), scores.size - 1)
    return float(scores[rank])


def empirical_power(
    case_scores: np.ndarray, reference_scores: np.ndarray, alpha: float
) -> float:
    """Fraction of case individuals detected at false-positive rate alpha."""
    if np.asarray(case_scores).size == 0:
        raise GenomicsError("case scores are empty")
    threshold = detection_threshold(reference_scores, alpha)
    case = np.asarray(case_scores, dtype=np.float64)
    return float(np.count_nonzero(case > threshold) / case.size)


@dataclass(frozen=True)
class LrSelectionResult:
    """Outcome of the empirical safe-subset search."""

    selected_columns: List[int]
    power: float
    threshold_alpha: float
    evaluations: int

    def __post_init__(self) -> None:
        if self.power < 0 or self.power > 1:
            raise GenomicsError("power must be a probability")


def select_safe_subset(
    case_matrix: np.ndarray,
    reference_matrix: np.ndarray,
    order: Sequence[int],
    *,
    alpha: float,
    beta: float,
    preselected: Optional[Sequence[int]] = None,
) -> LrSelectionResult:
    """Find a maximal-by-greedy subset of SNPs with identification power < beta.

    This is SecureGenome's empirical search as GenDPR runs it inside the
    leader enclave (several iterations over several sets of SNPs,
    Section 7.2): walk the candidate SNPs in ``order`` — by convention
    the chi-squared ranking, so the most scientifically valuable SNPs
    get first claim on the privacy budget — tentatively add each to the
    release set, recompute the empirical power of the LR detector over
    the enlarged set, and keep the SNP only if power stays below
    ``beta``.

    Args:
        case_matrix: merged ``N_case x L`` LR-matrix.
        reference_matrix: ``N_ref x L`` LR-matrix of the reference set.
        order: column evaluation order (e.g. ascending chi-squared
            p-value).
        alpha: tolerated false-positive rate of the detector.
        beta: identification-power threshold the release must stay below.
        preselected: columns whose statistics are *already public*
            (earlier releases); their LR contributions seed the running
            scores so the bound applies to the cumulative exposure, but
            they are not part of the returned selection.  This is the
            interdependent-release mode (see
            :mod:`repro.core.interdependent`).

    The search is deterministic in its inputs, which is what makes the
    distributed and centralized pipelines agree exactly.
    """
    case = np.asarray(case_matrix, dtype=np.float64)
    reference = np.asarray(reference_matrix, dtype=np.float64)
    if case.ndim != 2 or reference.ndim != 2:
        raise GenomicsError("LR matrices must be 2-D")
    if case.shape[1] != reference.shape[1]:
        raise GenomicsError("case and reference matrices cover different SNPs")
    columns = list(order)
    if any(not 0 <= c < case.shape[1] for c in columns):
        raise GenomicsError("selection order references unknown columns")
    if len(set(columns)) != len(columns):
        raise GenomicsError("selection order contains duplicates")
    seeded = [int(c) for c in (preselected or [])]
    if any(not 0 <= c < case.shape[1] for c in seeded):
        raise GenomicsError("preselected column out of range")
    if set(seeded) & set(columns):
        raise GenomicsError("preselected columns overlap the candidate order")

    selected: List[int] = []
    case_running = lr_scores(case, seeded) if seeded else np.zeros(
        case.shape[0], dtype=np.float64
    )
    ref_running = lr_scores(reference, seeded) if seeded else np.zeros(
        reference.shape[0], dtype=np.float64
    )
    power = empirical_power(case_running, ref_running, alpha) if seeded else 0.0
    evaluations = 0
    for column in columns:
        trial_case = case_running + case[:, column]
        trial_ref = ref_running + reference[:, column]
        trial_power = empirical_power(trial_case, trial_ref, alpha)
        evaluations += 1
        if trial_power < beta:
            selected.append(column)
            case_running = trial_case
            ref_running = trial_ref
            power = trial_power
    return LrSelectionResult(
        selected_columns=selected,
        power=power,
        threshold_alpha=alpha,
        evaluations=evaluations,
    )
