"""The fault injector: applies a :class:`FaultPlan` to a live run.

The injector sits behind two hooks, both disabled by default:

* :meth:`SimulatedNetwork.install_fault_injector` routes every
  ``send`` through :meth:`FaultInjector.on_send`, which may drop,
  duplicate, delay or corrupt the envelope, or fail the operation for
  a partition window.
* :func:`repro.tee.enclave.guarded` accepts the injector's
  :meth:`on_ecall` as an ECALL interceptor, which tears an enclave
  down at a planned crash point.

Every injected event is counted, appended to a bounded event log for
the fault-injection report, and traced through :data:`repro.obs.TRACER`
when observability is on.  All bookkeeping lives behind one lock; the
decisions themselves are pure plan lookups, so worker threads cannot
perturb the schedule.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Tuple

from ..errors import NetworkError
from ..net.message import Envelope
from ..obs.tracer import TRACER
from .plan import CORRUPT, DELAY, DROP, DUPLICATE, FaultPlan

#: Cap on the per-run injected-event log (counters are never capped).
_EVENT_LOG_LIMIT = 10_000


class FaultInjector:
    """Applies one :class:`FaultPlan` to a network and a set of enclaves."""

    def __init__(self, plan: FaultPlan, *, leader_id: Optional[str] = None):
        self._plan = plan
        #: Corruption is only applied on the leader → member request leg
        #: (see FaultConfig.corrupt_rate); a corrupt draw on a reply leg
        #: degrades to a drop, modelling the transport integrity check
        #: discarding the record.
        self._leader_id = leader_id
        self._network = None
        self._lock = threading.Lock()
        self._link_index: Dict[Tuple[str, str], int] = {}
        self._ecall_index: Dict[str, int] = {}
        self._consumed_crash_points: set = set()
        self._round_index = 0
        self._round_kind = ""
        #: node_id -> send operations still to block (active partitions).
        self._partition_budget: Dict[str, int] = {}
        self._pending_delayed: List[Envelope] = []
        self._counters: Dict[str, int] = {
            "drops": 0,
            "duplicates": 0,
            "delays": 0,
            "corruptions": 0,
            "partition_blocks": 0,
            "crashes": 0,
            "released_delayed": 0,
            "flushed_in_flight": 0,
        }
        self._events: List[Dict[str, object]] = []

    @property
    def plan(self) -> FaultPlan:
        return self._plan

    def attach(self, network) -> None:
        """Bind to the network whose deliveries this injector mediates."""
        self._network = network

    def set_leader(self, leader_id: str) -> None:
        self._leader_id = leader_id

    # -- bookkeeping -----------------------------------------------------------

    def _record(self, action: str, counter: str, **attributes: object) -> None:
        self._counters[counter] += 1
        if len(self._events) < _EVENT_LOG_LIMIT:
            self._events.append(
                dict(attributes, action=action, round=self._round_index)
            )
        if TRACER.enabled:
            TRACER.event(f"fault.{action}", round=self._round_index, **attributes)

    # -- round lifecycle -------------------------------------------------------

    def begin_round(self, kind: str) -> int:
        """Advance the OCALL round counter; activate partition windows."""
        with self._lock:
            self._round_index += 1
            self._round_kind = kind
            for window in self._plan.partition_windows:
                if window.start_round == self._round_index:
                    budget = self._partition_budget.get(window.node_id, 0)
                    self._partition_budget[window.node_id] = (
                        budget + window.blocked_ops
                    )
                    self._record(
                        "partition_begin",
                        "partition_blocks",
                        node=window.node_id,
                        blocked_ops=window.blocked_ops,
                    )
                    # partition_begin is informational; the counter
                    # tracks blocked operations, so undo the increment.
                    self._counters["partition_blocks"] -= 1
            return self._round_index

    # -- network hook ----------------------------------------------------------

    def on_send(self, envelope: Envelope) -> None:
        """Mediate one delivery; called by ``SimulatedNetwork.send``.

        Either delivers (one or two copies, possibly corrupted), holds
        the envelope for a later :meth:`release_delayed`, silently
        drops it, or raises :class:`NetworkError` for an active
        partition window.
        """
        network = self._network
        if network is None:
            raise NetworkError("fault injector is not attached to a network")
        link = (envelope.sender, envelope.receiver)
        with self._lock:
            index = self._link_index.get(link, 0) + 1
            self._link_index[link] = index
            blocked = self._partition_blocked(envelope)
            if blocked:
                self._record(
                    "partition_block",
                    "partition_blocks",
                    node=blocked,
                    sender=envelope.sender,
                    receiver=envelope.receiver,
                    tag=envelope.tag,
                )
        if blocked:
            raise NetworkError(
                f"node {blocked!r} is partitioned (fault window)"
            )
        action = self._plan.action_for(envelope.sender, envelope.receiver, index)
        if action == CORRUPT and (
            self._leader_id is not None and envelope.sender != self._leader_id
        ):
            action = DROP
        if action is None:
            network._deliver(envelope)
            return
        context = {
            "sender": envelope.sender,
            "receiver": envelope.receiver,
            "tag": envelope.tag,
            "link_index": index,
        }
        if action == DROP:
            with self._lock:
                self._record("drop", "drops", **context)
        elif action == DUPLICATE:
            network._deliver(envelope)
            network._deliver(
                Envelope(
                    sender=envelope.sender,
                    receiver=envelope.receiver,
                    tag=envelope.tag,
                    body=envelope.body,
                )
            )
            with self._lock:
                self._record("duplicate", "duplicates", **context)
        elif action == DELAY:
            with self._lock:
                self._pending_delayed.append(envelope)
                self._record("delay", "delays", **context)
        elif action == CORRUPT:
            offset = self._plan.corrupt_offset(
                envelope.sender, envelope.receiver, index, len(envelope.body)
            )
            corrupted = bytearray(envelope.body)
            if corrupted:
                corrupted[offset] ^= 0x80
            network._deliver(
                Envelope(
                    sender=envelope.sender,
                    receiver=envelope.receiver,
                    tag=envelope.tag,
                    body=bytes(corrupted),
                )
            )
            with self._lock:
                self._record("corrupt", "corruptions", offset=offset, **context)

    def _partition_blocked(self, envelope: Envelope) -> Optional[str]:
        """The partitioned endpoint blocking this send, if any (locked)."""
        for node in (envelope.sender, envelope.receiver):
            budget = self._partition_budget.get(node, 0)
            if budget > 0:
                self._partition_budget[node] = budget - 1
                return node
        return None

    def release_delayed(self, node_id: str) -> int:
        """Deliver held envelopes involving ``node_id`` (backoff tick).

        Models the delayed frames finally arriving once the retrying
        peer has waited out its timeout.  Returns the number released.
        """
        network = self._network
        with self._lock:
            due = [
                e
                for e in self._pending_delayed
                if node_id in (e.sender, e.receiver)
            ]
            if not due:
                return 0
            self._pending_delayed = [
                e for e in self._pending_delayed if e not in due
            ]
            self._counters["released_delayed"] += len(due)
        for envelope in due:
            network._deliver(envelope)
            if TRACER.enabled:
                TRACER.event(
                    "fault.release_delayed",
                    sender=envelope.sender,
                    receiver=envelope.receiver,
                    tag=envelope.tag,
                )
        return len(due)

    def reset_in_flight(self) -> int:
        """Discard held envelopes (failover flush); returns the count."""
        with self._lock:
            flushed = len(self._pending_delayed)
            self._pending_delayed = []
            self._counters["flushed_in_flight"] += flushed
        return flushed

    # -- enclave hook ----------------------------------------------------------

    def on_ecall(self, enclave, name: str) -> None:
        """ECALL interceptor: crash the enclave at a planned crash point.

        The crash happens *before* the dispatch, so the intercepted
        ECALL itself raises :class:`EnclaveCrashedError` — the host
        observes a mid-operation enclave loss, exactly the paper's
        leader-crash scenario.
        """
        with self._lock:
            index = self._ecall_index.get(enclave.enclave_id, 0) + 1
            self._ecall_index[enclave.enclave_id] = index
            crash = None
            for point in self._plan.crash_points:
                if (
                    point.enclave_id == enclave.enclave_id
                    and point.ecall_index == index
                    and point not in self._consumed_crash_points
                ):
                    crash = point
                    break
            if crash is not None:
                self._consumed_crash_points.add(crash)
                self._record(
                    "crash",
                    "crashes",
                    enclave=enclave.enclave_id,
                    ecall=name,
                    ecall_index=index,
                )
        if crash is not None:
            enclave.crash()

    # -- reporting -------------------------------------------------------------

    def counters(self) -> Dict[str, int]:
        with self._lock:
            return dict(self._counters)

    @property
    def injected_faults(self) -> int:
        """Total faults injected so far (partitions count per blocked op)."""
        with self._lock:
            return (
                self._counters["drops"]
                + self._counters["duplicates"]
                + self._counters["delays"]
                + self._counters["corruptions"]
                + self._counters["partition_blocks"]
                + self._counters["crashes"]
            )

    def report(self) -> Dict[str, object]:
        """Machine-readable fault-injection report (CI artifact payload)."""
        with self._lock:
            return {
                "plan": self._plan.describe(),
                "counters": dict(self._counters),
                "rounds": self._round_index,
                "events": [dict(e) for e in self._events],
                "event_log_truncated": len(self._events) >= _EVENT_LOG_LIMIT,
            }
