"""Shared fixtures for the paper-reproduction benchmarks.

Every benchmark renders its paper artifact (table or figure) as text
and saves it under ``benchmarks/results/`` so the numbers survive the
pytest run; EXPERIMENTS.md indexes those files against the paper's
originals.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def save_result(results_dir):
    """Write one rendered artifact to disk and echo it to stdout."""

    def _save(name: str, text: str) -> None:
        path = results_dir / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[saved to {path}]")

    return _save
