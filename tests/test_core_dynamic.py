"""Dynamic federated studies (DyPS-style genome arrival)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import StudyConfig
from repro.core.dynamic import DynamicStudy
from repro.core.pipeline import run_local_pipeline
from repro.errors import ProtocolError
from repro.genomics import GenotypeMatrix, SyntheticSpec, generate_cohort


@pytest.fixture(scope="module")
def growing_cohort():
    spec = SyntheticSpec(
        num_snps=180, num_case=480, num_control=300, seed=55
    )
    cohort, _ = generate_cohort(spec)
    return cohort


@pytest.fixture()
def study(growing_cohort):
    config = StudyConfig(snp_count=180, seed=3, study_id="dynamic")
    return DynamicStudy(
        growing_cohort.panel,
        growing_cohort.reference,
        config,
        ["lab-a", "lab-b", "lab-c"],
        min_cohort_size=200,
    )


def _batches(cohort, start, stop):
    return GenotypeMatrix(cohort.case.array()[start:stop])


class TestConstruction:
    def test_validation(self, growing_cohort):
        config = StudyConfig(snp_count=180, study_id="d")
        with pytest.raises(ProtocolError):
            DynamicStudy(
                growing_cohort.panel, growing_cohort.reference, config, []
            )
        with pytest.raises(ProtocolError):
            DynamicStudy(
                growing_cohort.panel,
                growing_cohort.reference,
                config,
                ["a", "a"],
            )
        bad_config = StudyConfig(snp_count=99, study_id="d")
        with pytest.raises(ProtocolError):
            DynamicStudy(
                growing_cohort.panel,
                growing_cohort.reference,
                bad_config,
                ["a"],
            )
        with pytest.raises(ProtocolError):
            DynamicStudy(
                growing_cohort.panel,
                growing_cohort.reference,
                config,
                ["a"],
                min_cohort_size=0,
            )

    def test_submit_validation(self, study, growing_cohort):
        with pytest.raises(ProtocolError):
            study.submit_batch("nobody", _batches(growing_cohort, 0, 10))
        with pytest.raises(ProtocolError):
            study.submit_batch(
                "lab-a", GenotypeMatrix(np.zeros((5, 7), dtype=np.uint8))
            )
        with pytest.raises(ProtocolError):
            study.submit_batch(
                "lab-a", GenotypeMatrix(np.zeros((0, 180), dtype=np.uint8))
            )


class TestEpochs:
    def test_below_floor_no_release(self, study, growing_cohort):
        study.submit_batch("lab-a", _batches(growing_cohort, 0, 60))
        report = study.close_epoch()
        assert not report.assessed
        assert report.result is None
        assert report.total_case_genomes == 60
        assert study.released_snps == ()

    def test_assessment_matches_oracle(self, study, growing_cohort):
        study.submit_batch("lab-a", _batches(growing_cohort, 0, 120))
        study.submit_batch("lab-b", _batches(growing_cohort, 120, 240))
        report = study.close_epoch()
        assert report.assessed
        oracle = run_local_pipeline(
            growing_cohort.case.array()[:240],
            growing_cohort.reference.array(),
            maf_cutoff=0.05,
            ld_cutoff=1e-5,
            alpha=0.1,
            beta=0.9,
        )
        assert list(report.result.l_safe) == oracle.l_safe
        assert set(report.newly_released) == set(oracle.l_safe)

    def test_growth_over_epochs(self, study, growing_cohort):
        study.submit_batch("lab-a", _batches(growing_cohort, 0, 120))
        study.submit_batch("lab-b", _batches(growing_cohort, 120, 240))
        first = study.close_epoch()
        study.submit_batch("lab-c", _batches(growing_cohort, 240, 360))
        study.submit_batch("lab-a", _batches(growing_cohort, 360, 480))
        second = study.close_epoch()
        assert second.total_case_genomes == 480
        assert second.epoch == 2
        assert len(study.history) == 2
        # The ledger is consistent: released = newly + still.
        assert set(second.released) == set(second.newly_released) | set(
            second.still_released
        )
        # Revocations are exactly previously-released-now-unsafe.
        assert set(second.revoked) == set(first.released) - set(
            second.result.l_safe
        )
        assert set(study.revocation_exposure()) >= set(second.revoked)

    def test_pending_batches_wait_for_epoch_close(self, study, growing_cohort):
        study.submit_batch("lab-a", _batches(growing_cohort, 0, 250))
        assert study.total_case_genomes == 250
        report = study.close_epoch()
        assert report.assessed
        # A new pending batch does not affect the already-closed epoch.
        study.submit_batch("lab-b", _batches(growing_cohort, 250, 300))
        assert study.history[-1].total_case_genomes == 250

    def test_member_without_data_excluded(self, study, growing_cohort):
        study.submit_batch("lab-a", _batches(growing_cohort, 0, 150))
        study.submit_batch("lab-b", _batches(growing_cohort, 150, 260))
        report = study.close_epoch()
        assert report.assessed
        assert report.result.num_members == 2  # lab-c had nothing yet
