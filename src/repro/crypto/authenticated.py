"""Authenticated encryption (encrypt-then-MAC AEAD).

Two interchangeable AEAD schemes share one wire format::

    nonce (16) || ciphertext || tag (32)

* :class:`AesCtrHmacAead` — pure-Python AES-CTR + HMAC-SHA256; the
  byte-exact analogue of the paper's AES-256 encryption, used for small
  control messages, key wrapping and wherever tests need the reference
  cipher.
* :class:`StreamAead` — SHA-256 counter-mode stream + HMAC-SHA256; the
  default for bulk intermediate data (see :mod:`repro.crypto.stream` for
  the substitution rationale).

Both derive independent encryption and MAC subkeys from the caller's key
via HKDF, authenticate the nonce and optional associated data, and verify
tags in constant time.
"""

from __future__ import annotations

import hashlib
import hmac
import os

from ..errors import AuthenticationError, DecryptionError
from .kdf import derive_subkey
from .modes import CTR
from .stream import NONCE_SIZE, StreamCipher

TAG_SIZE = 32
#: Total bytes an AEAD frame adds over its plaintext.
AEAD_OVERHEAD = NONCE_SIZE + TAG_SIZE


class _EncryptThenMac:
    """Shared encrypt-then-MAC logic over an abstract keystream processor."""

    #: Name mixed into the MAC so frames from different schemes never verify.
    scheme_label = "aead"

    def __init__(self, key: bytes):
        if len(key) < 16:
            raise ValueError("AEAD key must be at least 16 bytes")
        self._mac_key = derive_subkey(key, f"{self.scheme_label}/mac")
        enc_key = derive_subkey(key, f"{self.scheme_label}/enc")
        self._processor = self._make_processor(enc_key)

    def _make_processor(self, enc_key: bytes):
        raise NotImplementedError

    def _process(self, nonce: bytes, data: bytes) -> bytes:
        raise NotImplementedError

    def _tag(self, nonce: bytes, ciphertext: bytes, associated_data: bytes) -> bytes:
        mac = hmac.new(self._mac_key, digestmod=hashlib.sha256)
        mac.update(len(associated_data).to_bytes(8, "big"))
        mac.update(associated_data)
        mac.update(nonce)
        mac.update(ciphertext)
        return mac.digest()

    def encrypt(
        self,
        plaintext: bytes,
        associated_data: bytes = b"",
        *,
        nonce: bytes | None = None,
    ) -> bytes:
        """Encrypt and authenticate; returns a self-contained frame.

        A random nonce is drawn unless the caller supplies one (callers
        doing so are responsible for uniqueness per key).
        """
        if nonce is None:
            nonce = os.urandom(NONCE_SIZE)
        if len(nonce) != NONCE_SIZE:
            raise ValueError(f"nonce must be {NONCE_SIZE} bytes")
        ciphertext = self._process(nonce, plaintext)
        return nonce + ciphertext + self._tag(nonce, ciphertext, associated_data)

    def decrypt(self, frame: bytes, associated_data: bytes = b"") -> bytes:
        """Verify and decrypt a frame produced by :meth:`encrypt`."""
        if len(frame) < AEAD_OVERHEAD:
            raise DecryptionError("AEAD frame is too short")
        nonce = frame[:NONCE_SIZE]
        ciphertext = frame[NONCE_SIZE:-TAG_SIZE]
        tag = frame[-TAG_SIZE:]
        expected = self._tag(nonce, ciphertext, associated_data)
        if not hmac.compare_digest(tag, expected):
            raise AuthenticationError("AEAD tag verification failed")
        return self._process(nonce, ciphertext)


class AesCtrHmacAead(_EncryptThenMac):
    """Reference AEAD: pure-Python AES-256-CTR with HMAC-SHA256."""

    scheme_label = "aes-ctr-hmac"

    def _make_processor(self, enc_key: bytes) -> CTR:
        return CTR(enc_key)

    def _process(self, nonce: bytes, data: bytes) -> bytes:
        return self._processor.process(nonce, data)


class StreamAead(_EncryptThenMac):
    """Bulk AEAD: SHA-256 counter-mode stream with HMAC-SHA256."""

    scheme_label = "stream-hmac"

    def _make_processor(self, enc_key: bytes) -> StreamCipher:
        return StreamCipher(enc_key)

    def _process(self, nonce: bytes, data: bytes) -> bytes:
        return self._processor.process(nonce, data)


def default_aead(key: bytes) -> StreamAead:
    """The AEAD the protocol stack uses for enclave-to-enclave traffic."""
    return StreamAead(key)
