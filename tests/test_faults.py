"""Deterministic fault injection (:mod:`repro.faults`)."""

from __future__ import annotations

import pytest

from repro.config import FaultConfig
from repro.errors import ConfigError, NetworkError
from repro.faults import (
    ACTIONS,
    CrashPoint,
    FaultInjector,
    FaultPlan,
    PartitionWindow,
)
from repro.net import Envelope, SimulatedNetwork
from repro.tee.enclave import Enclave, ecall, guarded


class _ToyEnclave(Enclave):
    @ecall
    def ping(self) -> str:
        return "pong"


def _network(*nodes: str) -> SimulatedNetwork:
    network = SimulatedNetwork()
    for node in nodes:
        network.register(node)
    return network


class TestFaultPlan:
    def test_rates_must_sum_to_at_most_one(self):
        with pytest.raises(ConfigError):
            FaultPlan(drop_rate=0.6, duplicate_rate=0.5)

    def test_decisions_are_deterministic_and_order_independent(self):
        a = FaultPlan(seed=3, drop_rate=0.2, delay_rate=0.2)
        b = FaultPlan(seed=3, drop_rate=0.2, delay_rate=0.2)
        coordinates = [("x", "y", i) for i in range(200)]
        forward = [a.action_for(*c) for c in coordinates]
        backward = [b.action_for(*c) for c in reversed(coordinates)]
        assert forward == backward[::-1]
        assert any(action is not None for action in forward)

    def test_different_seeds_differ(self):
        a = FaultPlan(seed=1, drop_rate=0.3)
        b = FaultPlan(seed=2, drop_rate=0.3)
        decisions_a = [a.action_for("x", "y", i) for i in range(100)]
        decisions_b = [b.action_for("x", "y", i) for i in range(100)]
        assert decisions_a != decisions_b

    def test_zero_rates_never_fault(self):
        plan = FaultPlan(seed=9)
        assert all(
            plan.action_for("x", "y", i) is None for i in range(100)
        )

    def test_rates_are_approximated(self):
        plan = FaultPlan(seed=4, drop_rate=0.25)
        drops = sum(
            1 for i in range(2000) if plan.action_for("x", "y", i) == "drop"
        )
        assert 0.18 < drops / 2000 < 0.32

    def test_from_config_round_trips(self):
        config = FaultConfig(
            enabled=True,
            seed=12,
            drop_rate=0.1,
            crash_points=(("gdo-1", 3),),
            partition_windows=(("gdo-2", 2, 4),),
        )
        plan = FaultPlan.from_config(config)
        assert plan.crash_points == (CrashPoint("gdo-1", 3),)
        assert plan.partition_windows == (PartitionWindow("gdo-2", 2, 4),)
        assert plan.describe()["drop_rate"] == 0.1

    def test_chaos_preset_splits_intensity(self):
        config = FaultConfig.chaos(5, intensity=0.2)
        total = (
            config.drop_rate
            + config.duplicate_rate
            + config.delay_rate
            + config.corrupt_rate
        )
        assert total == pytest.approx(0.2)
        assert config.drop_rate == pytest.approx(2 * config.duplicate_rate)
        described = FaultPlan.from_config(config).describe()
        assert {f"{action}_rate" for action in ACTIONS} <= set(described)


class TestFaultInjector:
    def test_drop_loses_the_envelope(self):
        plan = FaultPlan(seed=0, drop_rate=1.0)
        network = _network("a", "b")
        injector = FaultInjector(plan)
        network.install_fault_injector(injector)
        network.send(Envelope(sender="a", receiver="b", tag="t", body=b"x"))
        assert network.pending("b") == 0
        assert injector.counters()["drops"] == 1

    def test_duplicate_delivers_twice(self):
        plan = FaultPlan(seed=0, duplicate_rate=1.0)
        network = _network("a", "b")
        network.install_fault_injector(FaultInjector(plan))
        network.send(Envelope(sender="a", receiver="b", tag="t", body=b"x"))
        assert network.pending("b") == 2

    def test_delay_holds_until_released(self):
        plan = FaultPlan(seed=0, delay_rate=1.0)
        network = _network("a", "b")
        injector = FaultInjector(plan)
        network.install_fault_injector(injector)
        network.send(Envelope(sender="a", receiver="b", tag="t", body=b"x"))
        assert network.pending("b") == 0
        assert injector.release_delayed("b") == 1
        assert network.pending("b") == 1

    def test_corrupt_flips_a_byte_on_the_leader_leg(self):
        plan = FaultPlan(seed=0, corrupt_rate=1.0)
        network = _network("leader", "b")
        injector = FaultInjector(plan, leader_id="leader")
        network.install_fault_injector(injector)
        body = bytes(range(32))
        network.send(Envelope(sender="leader", receiver="b", tag="t", body=body))
        delivered = network.receive("b")
        assert delivered.body != body
        assert len(delivered.body) == len(body)
        # Exactly one byte differs, at the plan's deterministic offset.
        diffs = [i for i, (x, y) in enumerate(zip(body, delivered.body)) if x != y]
        assert diffs == [plan.corrupt_offset("leader", "b", 1, len(body))]

    def test_corrupt_degrades_to_drop_on_the_reply_leg(self):
        plan = FaultPlan(seed=0, corrupt_rate=1.0)
        network = _network("leader", "b")
        injector = FaultInjector(plan, leader_id="leader")
        network.install_fault_injector(injector)
        network.send(Envelope(sender="b", receiver="leader", tag="t", body=b"x"))
        assert network.pending("leader") == 0
        assert injector.counters()["drops"] == 1
        assert injector.counters()["corruptions"] == 0

    def test_partition_window_blocks_budgeted_sends(self):
        plan = FaultPlan(
            seed=0, partition_windows=(PartitionWindow("b", 1, 2),)
        )
        network = _network("a", "b")
        injector = FaultInjector(plan)
        network.install_fault_injector(injector)
        injector.begin_round("t")
        for _ in range(2):
            with pytest.raises(NetworkError):
                network.send(
                    Envelope(sender="a", receiver="b", tag="t", body=b"x")
                )
        # Budget exhausted: the partition has healed.
        network.send(Envelope(sender="a", receiver="b", tag="t", body=b"x"))
        assert network.pending("b") == 1
        assert injector.counters()["partition_blocks"] == 2

    def test_partition_window_waits_for_its_round(self):
        plan = FaultPlan(
            seed=0, partition_windows=(PartitionWindow("b", 2, 1),)
        )
        network = _network("a", "b")
        injector = FaultInjector(plan)
        network.install_fault_injector(injector)
        injector.begin_round("t")
        network.send(Envelope(sender="a", receiver="b", tag="t", body=b"x"))
        assert network.pending("b") == 1
        injector.begin_round("t")
        with pytest.raises(NetworkError):
            network.send(Envelope(sender="a", receiver="b", tag="t", body=b"x"))

    def test_crash_point_tears_enclave_down_at_exact_ecall(self):
        plan = FaultPlan(seed=0, crash_points=(CrashPoint("e1", 3),))
        injector = FaultInjector(plan)
        enclave = _ToyEnclave(platform_key=bytes(32), enclave_id="e1")
        proxy = guarded(enclave, injector.on_ecall)
        assert proxy.ecall("ping") == "pong"
        assert proxy.ecall("ping") == "pong"
        from repro.errors import EnclaveCrashedError

        with pytest.raises(EnclaveCrashedError):
            proxy.ecall("ping")
        assert injector.counters()["crashes"] == 1

    def test_crash_point_only_hits_named_enclave(self):
        plan = FaultPlan(seed=0, crash_points=(CrashPoint("other", 1),))
        injector = FaultInjector(plan)
        enclave = _ToyEnclave(platform_key=bytes(32), enclave_id="e1")
        proxy = guarded(enclave, injector.on_ecall)
        assert proxy.ecall("ping") == "pong"
        assert injector.counters()["crashes"] == 0

    def test_reset_in_flight_discards_delayed(self):
        plan = FaultPlan(seed=0, delay_rate=1.0)
        network = _network("a", "b")
        injector = FaultInjector(plan)
        network.install_fault_injector(injector)
        network.send(Envelope(sender="a", receiver="b", tag="t", body=b"x"))
        assert injector.reset_in_flight() == 1
        assert injector.release_delayed("b") == 0
        assert network.pending("b") == 0

    def test_report_is_json_friendly(self):
        import json

        plan = FaultPlan(seed=0, drop_rate=1.0)
        network = _network("a", "b")
        injector = FaultInjector(plan)
        network.install_fault_injector(injector)
        network.send(Envelope(sender="a", receiver="b", tag="t", body=b"x"))
        report = injector.report()
        assert json.loads(json.dumps(report))["counters"]["drops"] == 1
        assert report["events"][0]["action"] == "drop"


class TestZeroOverheadWhenDisabled:
    def test_network_fast_path_without_injector(self):
        network = _network("a", "b")
        assert network._fault_injector is None
        network.send(Envelope(sender="a", receiver="b", tag="t", body=b"x"))
        assert network.pending("b") == 1

    def test_proxy_without_interceptor_returns_bound_method(self):
        enclave = _ToyEnclave(platform_key=bytes(32), enclave_id="e1")
        proxy = guarded(enclave)
        assert proxy.ecall == enclave.ecall

    def test_disabled_faults_do_not_change_study_fingerprint(self):
        from repro import StudyConfig
        from repro.config import ResilienceConfig
        from repro.obs import config_fingerprint
        import dataclasses

        base = StudyConfig(snp_count=16)
        tweaked = dataclasses.replace(
            base,
            faults=FaultConfig.chaos(3),
            resilience=ResilienceConfig.supervised(),
        )
        assert config_fingerprint(base) == config_fingerprint(tweaked)
