"""Command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, load_cohort_bundle, main, save_cohort_bundle


@pytest.fixture()
def cohort_file(tmp_path, small_cohort):
    path = tmp_path / "cohort.npz"
    save_cohort_bundle(str(path), small_cohort)
    return str(path)


class TestBundleIo:
    def test_roundtrip(self, tmp_path, small_cohort):
        path = str(tmp_path / "c.npz")
        save_cohort_bundle(path, small_cohort)
        loaded = load_cohort_bundle(path)
        assert loaded.case == small_cohort.case
        assert loaded.control == small_cohort.control
        assert loaded.reference is loaded.control

    def test_missing_keys_rejected(self, tmp_path):
        import numpy as np

        path = str(tmp_path / "bad.npz")
        np.savez(path, case=np.zeros((2, 3), dtype=np.uint8))
        with pytest.raises(Exception):
            load_cohort_bundle(path)


class TestCommands:
    def test_generate_and_info(self, tmp_path, capsys):
        out = str(tmp_path / "gen.npz")
        assert main(
            [
                "generate",
                "--snps", "50",
                "--case", "60",
                "--control", "55",
                "--seed", "3",
                "--out", out,
            ]
        ) == 0
        assert "60 case" in capsys.readouterr().out
        assert main(["info", "--cohort", out]) == 0
        captured = capsys.readouterr().out
        assert "50 SNPs" in captured
        assert "minor-allele frequency" in captured

    def test_run_plain(self, cohort_file, tmp_path, capsys):
        json_out = str(tmp_path / "result.json")
        assert main(
            [
                "run",
                "--cohort", cohort_file,
                "--members", "2",
                "--json", json_out,
            ]
        ) == 0
        captured = capsys.readouterr().out
        assert "L_des=240" in captured
        payload = json.loads(open(json_out).read())
        assert payload["members"] == 2
        assert set(payload["l_safe"]) <= set(payload["l_double_prime"])

    def test_run_with_collusion(self, cohort_file, capsys):
        assert main(
            [
                "run",
                "--cohort", cohort_file,
                "--members", "3",
                "--collusion", "1",
            ]
        ) == 0
        assert "combinations" in capsys.readouterr().out

    def test_run_conservative_collusion(self, cohort_file, capsys):
        assert main(
            [
                "run",
                "--cohort", cohort_file,
                "--members", "3",
                "--collusion", "conservative",
            ]
        ) == 0
        assert "combinations" in capsys.readouterr().out

    def test_attack_from_release(self, cohort_file, tmp_path, capsys):
        json_out = str(tmp_path / "result.json")
        main(["run", "--cohort", cohort_file, "--json", json_out])
        capsys.readouterr()
        assert main(
            ["attack", "--cohort", cohort_file, "--release", json_out]
        ) == 0
        assert "power" in capsys.readouterr().out

    def test_attack_explicit_snps(self, cohort_file, capsys):
        assert main(
            ["attack", "--cohort", cohort_file, "--snps", "0,1,2,3"]
        ) == 0
        assert "4 SNPs" in capsys.readouterr().out

    def test_run_sharded_with_chaos_seed(self, cohort_file, tmp_path, capsys):
        """`run --shards N --chaos-seed S` composes sharding with the
        seeded fault plan under supervision — and the faulted sharded
        release matches the clean flat one bit for bit."""
        faulted_out = str(tmp_path / "faulted.json")
        clean_out = str(tmp_path / "clean.json")
        assert main(
            [
                "run",
                "--cohort", cohort_file,
                "--members", "3",
                "--shards", "4",
                "--chaos-seed", "7",
                "--chaos-intensity", "0.1",
                "--json", faulted_out,
            ]
        ) == 0
        capsys.readouterr()
        assert main(
            [
                "run",
                "--cohort", cohort_file,
                "--members", "3",
                "--json", clean_out,
            ]
        ) == 0
        capsys.readouterr()
        faulted = json.loads(open(faulted_out).read())
        clean = json.loads(open(clean_out).read())
        assert faulted["l_safe"] == clean["l_safe"]
        assert faulted["l_prime"] == clean["l_prime"]
        assert faulted["l_double_prime"] == clean["l_double_prime"]

    def test_run_supervised_flag_without_faults(self, cohort_file, capsys):
        assert main(
            [
                "run",
                "--cohort", cohort_file,
                "--members", "3",
                "--shards", "2",
                "--supervised",
            ]
        ) == 0
        assert "L_des" in capsys.readouterr().out

    def test_missing_file_is_clean_error(self, capsys):
        assert main(["info", "--cohort", "/nope/missing.npz"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestServeCommands:
    def test_serve_batch_with_artifacts(self, cohort_file, tmp_path, capsys):
        metrics_out = str(tmp_path / "serve_metrics.json")
        results_out = str(tmp_path / "serve_results.json")
        assert main(
            [
                "serve",
                "--cohort", cohort_file,
                "--studies", "3",
                "--metrics", metrics_out,
                "--results", results_out,
            ]
        ) == 0
        captured = capsys.readouterr().out
        assert "served 3 studies (3 done)" in captured
        with open(metrics_out, encoding="utf-8") as handle:
            metrics = json.load(handle)
        assert metrics["completed"] == 3
        assert metrics["warm_hits"] >= 1
        assert "rounds_admitted" in metrics
        with open(results_out, encoding="utf-8") as handle:
            results = json.load(handle)
        assert set(results) == {"serve-0", "serve-1", "serve-2"}
        assert all(r["status"] == "done" for r in results.values())

    def test_submit_single_study(self, cohort_file, tmp_path, capsys):
        report_out = str(tmp_path / "request_report.json")
        assert main(
            [
                "submit",
                "--cohort", cohort_file,
                "--study-id", "cli-submitted",
                "--report", report_out,
            ]
        ) == 0
        captured = capsys.readouterr().out
        assert "cli-submitted" in captured
        assert "gated rounds" in captured
        with open(report_out, encoding="utf-8") as handle:
            report = json.load(handle)
        assert report["study_id"] == "cli-submitted"

    def test_submit_sharded_study(self, cohort_file, tmp_path, capsys):
        """`submit --shards N` drives a sharded study through the
        service request path and reports shard accounting."""
        report_out = str(tmp_path / "sharded_report.json")
        assert main(
            [
                "submit",
                "--cohort", cohort_file,
                "--study-id", "cli-sharded",
                "--shards", "4",
                "--report", report_out,
            ]
        ) == 0
        captured = capsys.readouterr().out
        assert "cli-sharded" in captured
        with open(report_out, encoding="utf-8") as handle:
            report = json.load(handle)
        assert report["meta"]["sharding"]["num_shards"] == 4
        assert report["metrics"]["gauges"]["shard.ranges"] == 4
