"""Adversarial untrusted hosts: the trust boundary under attack.

The honest-but-curious model still lets a *compromised host* (outside
the TEE) tamper with anything it carries: sealed stores, wire frames,
datasets, replies.  Every such manipulation must surface as a typed
error from the trusted side — never as silently wrong statistics.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import partition_cohort
from repro.core.federation import build_federation
from repro.core.protocol import GenDPRProtocol
from repro.crypto.signing import MacSigner
from repro.errors import (
    ChannelError,
    DataIntegrityError,
    ProtocolError,
    ReproError,
    SealingError,
)
from repro.genomics import GenotypeMatrix, SignedMatrix
from repro.net import Envelope
from repro.tee.sealing import SealedBlob
from repro.tee.storage import SealedColumnStore


@pytest.fixture()
def fresh_federation(small_cohort, study_config):
    datasets = partition_cohort(small_cohort, 3)
    return build_federation(study_config, datasets, small_cohort)


def _member(federation):
    return next(
        m for m in federation.member_ids if m != federation.leader_id
    )


class TestTamperedDatasets:
    def test_tampered_signed_matrix_rejected_at_load(self, fresh_federation, small_cohort):
        member = _member(fresh_federation)
        enclave = fresh_federation.enclaves[member]
        signer = MacSigner(bytes(32), purpose="vcf-dataset")  # wrong key
        forged = SignedMatrix.create(small_cohort.case, signer)
        with pytest.raises(DataIntegrityError):
            enclave.ecall("load_local_dataset", forged)

    def test_wrong_panel_width_rejected(self, fresh_federation):
        member = _member(fresh_federation)
        enclave = fresh_federation.enclaves[member]
        # Signature valid in *some* federation, but wrong panel width —
        # even a correctly signed foreign dataset must be rejected.
        bad = GenotypeMatrix(np.zeros((4, 7), dtype=np.uint8))
        with pytest.raises(ReproError):
            enclave.ecall(
                "load_local_dataset",
                SignedMatrix.create(bad, MacSigner(bytes(32), purpose="vcf-dataset")),
            )


class TestTamperedSealedStore:
    def test_bitflipped_chunk_fails_during_protocol(self, fresh_federation):
        member = _member(fresh_federation)
        host = fresh_federation.hosts[member]
        store = host.store
        raw = bytearray(store.chunks[0].data)
        raw[40] ^= 0xFF
        host.store = SealedColumnStore(
            num_rows=store.num_rows,
            num_cols=store.num_cols,
            chunk_width=store.chunk_width,
            chunks=(SealedBlob(bytes(raw), store.chunks[0].label),)
            + store.chunks[1:],
            label=store.label,
        )
        with pytest.raises(SealingError):
            GenDPRProtocol(fresh_federation).run()

    def test_swapped_store_between_members_fails(self, fresh_federation):
        # A host substituting another member's sealed store (stolen
        # ciphertext) cannot have its enclave unseal it: different
        # platform keys.
        members = [
            m for m in fresh_federation.member_ids
            if m != fresh_federation.leader_id
        ]
        a, b = members[0], members[1]
        fresh_federation.hosts[a].store = fresh_federation.hosts[b].store
        with pytest.raises(SealingError):
            GenDPRProtocol(fresh_federation).run()


class TestTamperedFrames:
    def test_modified_wire_frame_rejected(self, fresh_federation):
        """A router flipping bits in a response frame is caught."""
        federation = fresh_federation
        protocol = GenDPRProtocol(federation)
        original_ocall = protocol._ocall_exchange

        def corrupting_ocall(kind, frames):
            responses = original_ocall(kind, frames)
            return {
                member: bytes([body[0] ^ 1]) + body[1:]
                for member, body in responses.items()
            }

        leader_host = federation.leader_host
        with pytest.raises(ChannelError):
            leader_host.enclave.ecall(
                "lead_collect_summaries",
                leader_host.store,
                leader_host.reference_store,
                corrupting_ocall,
            )

    def test_replayed_response_rejected(self, fresh_federation):
        federation = fresh_federation
        protocol = GenDPRProtocol(federation)
        captured = {}
        original_ocall = protocol._ocall_exchange

        def replaying_ocall(kind, frames):
            responses = original_ocall(kind, frames)
            if kind not in captured:
                captured[kind] = dict(responses)
                return responses
            return captured[kind]  # replay old frames

        leader_host = federation.leader_host
        leader_host.enclave.ecall(
            "lead_collect_summaries",
            leader_host.store,
            leader_host.reference_store,
            replaying_ocall,
        )
        leader_host.enclave.ecall("lead_run_maf")
        # The LD phase's first exchange replays summary-phase frames.
        with pytest.raises((ChannelError, ProtocolError)):
            leader_host.enclave.ecall(
                "lead_run_ld",
                leader_host.store,
                leader_host.reference_store,
                lambda kind, frames: captured.get("summary", {}),
            )

    def test_dropped_response_detected(self, fresh_federation):
        federation = fresh_federation
        protocol = GenDPRProtocol(federation)
        original_ocall = protocol._ocall_exchange

        def dropping_ocall(kind, frames):
            responses = original_ocall(kind, frames)
            if responses:
                responses.pop(sorted(responses)[0])
            return responses

        leader_host = federation.leader_host
        with pytest.raises(ProtocolError):
            leader_host.enclave.ecall(
                "lead_collect_summaries",
                leader_host.store,
                leader_host.reference_store,
                dropping_ocall,
            )

    def test_frame_misdelivered_to_wrong_member(self, fresh_federation):
        """Frames are channel-bound: member B cannot open A's frame."""
        federation = fresh_federation
        members = [
            m for m in federation.member_ids if m != federation.leader_id
        ]
        a, b = members[0], members[1]
        protocol = GenDPRProtocol(federation)
        original_ocall = protocol._ocall_exchange

        def misrouting_ocall(kind, frames):
            if a in frames and b in frames:
                frames = dict(frames)
                frames[a], frames[b] = frames[b], frames[a]
            return original_ocall(kind, frames)

        leader_host = federation.leader_host
        with pytest.raises(ChannelError):
            leader_host.enclave.ecall(
                "lead_collect_summaries",
                leader_host.store,
                leader_host.reference_store,
                misrouting_ocall,
            )


class TestMalformedEnclaveInputs:
    def test_garbage_frame_to_member(self, fresh_federation):
        member = _member(fresh_federation)
        host = fresh_federation.hosts[member]
        with pytest.raises(ReproError):
            host.handle_envelope(
                Envelope(
                    sender=fresh_federation.leader_id,
                    receiver=member,
                    tag="summary",
                    body=b"\x00" * 64,
                )
            )

    def test_member_without_store_cannot_answer(self, fresh_federation):
        member = _member(fresh_federation)
        host = fresh_federation.hosts[member]
        host.store = None
        with pytest.raises(ProtocolError):
            host.handle_envelope(
                Envelope(
                    sender=fresh_federation.leader_id,
                    receiver=member,
                    tag="summary",
                    body=b"x",
                )
            )
