"""R3 — crypto misuse.

The attestation and channel layers authenticate everything: quotes bind
measurements, frames carry HMAC tags, sealed blobs carry digests.  The
classic ways such code rots:

* ``==`` / ``!=`` on a MAC, digest, signature, measurement or derived
  key — short-circuiting comparison leaks the matching prefix length
  through timing; RFC 9257-style misuse.  Use ``hmac.compare_digest``
  (or a helper built on it, e.g. ``Measurement.matches``).
* literal keys/nonces/IVs baked into code — a fixed nonce under a
  stream cipher is a two-time pad.
* truncating a digest (``.digest()[:8]``) — silently halves collision
  resistance and breaks interop with full-width verifiers.

Heuristics are name-driven (identifier words like ``tag``, ``digest``,
``mac``…); size/length/index identifiers are exempt so ``TAG_SIZE``
comparisons stay quiet.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Tuple

from ..astutil import identifier_parts, is_constant_bytes_like, terminal_identifier
from ..findings import Finding
from . import ModuleInfo, Rule, register

#: Identifier words that mark a value as a secret-bearing digest/MAC.
SENSITIVE_PARTS: Tuple[str, ...] = (
    "tag",
    "digest",
    "mac",
    "hmac",
    "signature",
    "sig",
    "measurement",
    "report",
    "key",
)

#: Identifier words that mark a value as a *property* of a digest (its
#: size, an index…), not the digest itself.
EXEMPT_PARTS: Tuple[str, ...] = (
    "size",
    "len",
    "length",
    "count",
    "num",
    "idx",
    "index",
    "seq",
    "offset",
    "overhead",
    "bytes",
)

#: Keyword-argument names that must never receive literal secrets.
LITERAL_SECRET_KWARGS: Tuple[str, ...] = ("key", "nonce", "iv")


def _sensitive_identifier(
    node: ast.AST, sensitive: Tuple[str, ...], exempt: Tuple[str, ...]
) -> "str | None":
    identifier = terminal_identifier(node)
    if identifier is None:
        return None
    parts = identifier_parts(identifier)
    if parts & set(exempt):
        return None
    if parts & set(sensitive):
        return identifier
    return None


@register
class CryptoMisuseRule(Rule):
    rule_id = "R3"
    name = "crypto-misuse"
    rationale = (
        "authenticity checks must be constant-time and keys/nonces "
        "unique: variable-time compares, literal secrets and truncated "
        "digests silently weaken the attested trust chain"
    )
    default_scopes = ("crypto", "tee", "serve")

    def check(self, module: ModuleInfo) -> Iterable[Finding]:
        sensitive = self.option_tuple("sensitive_parts", SENSITIVE_PARTS)
        exempt = self.option_tuple("exempt_parts", EXEMPT_PARTS)
        findings: List[Finding] = []
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Compare):
                findings.extend(
                    self._check_compare(module, node, sensitive, exempt)
                )
            elif isinstance(node, ast.Call):
                findings.extend(self._check_literal_secret(module, node))
            elif isinstance(node, (ast.Assign, ast.AnnAssign)):
                findings.extend(
                    self._check_literal_assignment(module, node)
                )
            elif isinstance(node, ast.Subscript):
                findings.extend(self._check_truncation(module, node))
        return findings

    # -- constant-time comparison --------------------------------------------

    def _check_compare(
        self,
        module: ModuleInfo,
        node: ast.Compare,
        sensitive: Tuple[str, ...],
        exempt: Tuple[str, ...],
    ) -> Iterable[Finding]:
        if len(node.ops) != 1 or not isinstance(
            node.ops[0], (ast.Eq, ast.NotEq)
        ):
            return ()
        operands = (node.left, node.comparators[0])
        # ``x == None``-style comparisons are identity checks, not MAC
        # verification; stay quiet.
        if any(
            isinstance(op, ast.Constant) and op.value is None
            for op in operands
        ):
            return ()
        for operand in operands:
            identifier = _sensitive_identifier(operand, sensitive, exempt)
            if identifier is not None:
                op = "==" if isinstance(node.ops[0], ast.Eq) else "!="
                return (
                    self.finding(
                        module,
                        node,
                        f"{op} on {identifier!r} is a variable-time "
                        "comparison that leaks the matching prefix; use "
                        "hmac.compare_digest (or a constant-time helper)",
                    ),
                )
        return ()

    # -- literal keys / nonces ------------------------------------------------

    def _check_literal_secret(
        self, module: ModuleInfo, node: ast.Call
    ) -> Iterable[Finding]:
        findings = []
        for keyword in node.keywords:
            if keyword.arg is None:
                continue
            parts = identifier_parts(keyword.arg)
            if not parts & set(LITERAL_SECRET_KWARGS):
                continue
            if is_constant_bytes_like(keyword.value):
                findings.append(
                    self.finding(
                        module,
                        keyword.value,
                        f"literal {keyword.arg!r} argument: keys and "
                        "nonces must be drawn from the DRBG or derived "
                        "per session, never baked into code",
                    )
                )
        return findings

    def _check_literal_assignment(
        self, module: ModuleInfo, node: "ast.Assign | ast.AnnAssign"
    ) -> Iterable[Finding]:
        targets = (
            node.targets if isinstance(node, ast.Assign) else [node.target]
        )
        value = node.value
        if value is None or not is_constant_bytes_like(value):
            return ()
        for target in targets:
            if not isinstance(target, ast.Name):
                continue
            parts = identifier_parts(target.id)
            if parts & set(EXEMPT_PARTS):
                continue
            if parts & set(LITERAL_SECRET_KWARGS):
                return (
                    self.finding(
                        module,
                        node,
                        f"literal secret assigned to {target.id!r}: keys "
                        "and nonces must come from the DRBG or key "
                        "derivation, not source code",
                    ),
                )
        return ()

    # -- digest truncation -----------------------------------------------------

    def _check_truncation(
        self, module: ModuleInfo, node: ast.Subscript
    ) -> Iterable[Finding]:
        if not isinstance(node.slice, ast.Slice):
            return ()
        value = node.value
        if (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Attribute)
            and value.func.attr in ("digest", "hexdigest")
        ):
            return (
                self.finding(
                    module,
                    node,
                    "slicing a digest truncates its security level; "
                    "compare and store full-width digests",
                ),
            )
        return ()
