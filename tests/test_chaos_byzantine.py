"""Byzantine chaos tier: adversarial fault-plan sweep with integrity on.

Where ``test_chaos.py`` sweeps *crash-style* faults (drop, duplicate,
delay, corrupt, crash, partition), this tier arms the *Byzantine*
actions — REPLAY, WITHHOLD, EQUIVOCATE and sealed-checkpoint tampering
— against a federation running with integrity verification enabled
(broadcast-consistency echo, channel-transcript cross-checks and
checkpoint freshness; see ``docs/RESILIENCE.md``).

The verdict contract is the crash tier's, but strictly harder: every
run must either complete with release decisions **bit-identical** to
the fault-free reference of its (mode, collusion) cell, or abort with
a *classified* integrity error — and every detection must increment
its ``integrity.*`` counter.  The invariant executes inside
:mod:`repro.fuzz.oracle` (shared with the fuzzer and the crash tier)
and the 18 adversarial genomes come from :mod:`repro.fuzz.seeds`.

Set ``CHAOS_REPORT_PATH`` to write the per-run report (records keyed
by sweep cell — re-runs replace, never duplicate — each carrying its
plan digest) and ``CHAOS_INTEGRITY_PATH`` to write the aggregated
integrity counters; the CI ``chaos`` job uploads both as artifacts.
Any failure reproduces locally from its seed alone.
"""

from __future__ import annotations

import dataclasses
import json
import os

import pytest

from repro import generate_cohort
from repro.core.integrity import COUNTER_NAMES
from repro.fuzz.genome import genome_config
from repro.fuzz.oracle import DecisionOracle
from repro.fuzz.seeds import (
    BYZANTINE_CORRUPT_SEEDS,
    BYZANTINE_EQUIVOCATE_SEEDS,
    BYZANTINE_SEEDS,
    BYZANTINE_STALE_SEEDS,
    byzantine_seed_genome,
    first_follower,
    seed_f,
    seed_mode,
)
from repro.genomics import SyntheticSpec

MEMBERS = 3
STUDY_ID = "byzantine-sweep"
STUDY_SEED = 5

#: Subset of the sweep re-run sharded (per shard count in SHARD_AXIS).
#: Hand-picked for both modes, both collusion settings, broadcast
#: equivocators (102, 105, 108, 111) and corrupt-checkpoint tamperers
#: (105, 112).
SHARDED_SEEDS = [101, 102, 105, 108, 111, 112]
SHARD_AXIS = (2, 4)
#: Sharded seeds whose plan also arms combine-frame falsification on
#: one member — interior-node equivocation against the tree rounds.
SHARD_FLIP_SEEDS = {101, 108, 111}

#: Report records keyed by (seed, shards): re-execution within one
#: session replaces the cell's record, so the report never
#: accumulates duplicates (and neither do the aggregated counters,
#: which are summed from the records at teardown).
_collected_runs = {}


@pytest.fixture(scope="module")
def oracle():
    cohort, _ = generate_cohort(
        SyntheticSpec(num_snps=80, num_case=120, num_control=100, seed=5)
    )
    return DecisionOracle(
        cohort=cohort,
        members=MEMBERS,
        study_id=STUDY_ID,
        study_seed=STUDY_SEED,
    )


def _genome(oracle, seed, shards=1):
    genome = byzantine_seed_genome(
        seed, members=oracle.member_ids, leader=oracle.leader_id
    )
    faults = genome.faults
    if shards > 1 and seed in SHARD_FLIP_SEEDS:
        # The interior-node attack the shard commitment verification
        # exists to catch: a member's compromised module emits
        # in-bounds falsified leaf partials into the tree.
        faults = dataclasses.replace(
            faults,
            shard_flip_rate=0.35,
            shard_flip_target=first_follower(
                oracle.member_ids, oracle.leader_id
            ),
        )
    return dataclasses.replace(genome, faults=faults, shards=shards)


def _execute(oracle, seed, shards=1):
    config = genome_config(
        _genome(oracle, seed, shards),
        snp_count=80,
        study_id=STUDY_ID,
        study_seed=STUDY_SEED,
        max_attempts=6,
        max_failovers=3,
    )
    return oracle.execute(config)


def _collect(run, seed, shards=1, **extra):
    _collected_runs[(seed, shards)] = run.record(
        seed=seed,
        shards=shards,
        mode=seed_mode(seed),
        f=seed_f(seed),
        failovers=run.failovers,
        integrity=dict(run.integrity_counters),
        **extra,
    )


def _aggregate_counters():
    totals = {name: 0 for name in COUNTER_NAMES}
    for record in _collected_runs.values():
        for name, value in record["integrity"].items():
            totals[name] += value
    return totals


@pytest.fixture(scope="module", autouse=True)
def byzantine_report():
    """Write the tier's reports if the artifact paths are configured."""
    yield
    if not _collected_runs:
        return
    runs = [_collected_runs[key] for key in sorted(_collected_runs)]
    report_path = os.environ.get("CHAOS_REPORT_PATH")
    if report_path:
        completed = sum(1 for r in runs if r["outcome"] == "completed")
        payload = {
            "study_id": STUDY_ID,
            "members": MEMBERS,
            "runs": runs,
            "summary": {
                "total": len(runs),
                "completed_identical": completed,
                "classified_aborts": len(runs) - completed,
            },
        }
        with open(report_path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
    integrity_path = os.environ.get("CHAOS_INTEGRITY_PATH")
    if integrity_path:
        payload = {
            "study_id": STUDY_ID,
            "runs": len(runs),
            "integrity_counters": _aggregate_counters(),
        }
        with open(integrity_path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")


@pytest.mark.parametrize("seed", BYZANTINE_SEEDS)
def test_byzantine_run_is_identical_or_classified(seed, oracle):
    run = _execute(oracle, seed)
    _collect(run, seed)
    # An abort under an armed adversary must be *classified*: a
    # detected violation (IntegrityError), a rejected tampered restore
    # (SealingError), or a typed resilience abort — all ReproError
    # subclasses, never a bare crash or a hang.  The oracle encodes
    # exactly that contract in the violation field.
    assert run.violation is None, run.violation
    if run.error in ("IntegrityError", "SealingError"):
        # The typed abort must have been counted at its detection site.
        assert run.federation.integrity_monitor.detections >= 1
    if run.verdict == "completed" and run.injected["equivocations"]:
        # A completed run that absorbed an equivocation must have
        # detected (and recovered from) every occurrence.
        assert run.integrity_counters["equivocations_detected"] >= 1


@pytest.mark.parametrize("shards", SHARD_AXIS)
@pytest.mark.parametrize("seed", SHARDED_SEEDS)
def test_sharded_byzantine_run_is_identical_or_classified(
    seed, shards, oracle
):
    """The Byzantine invariant survives composition with sharding.

    Tree rounds now carry the combine traffic under an armed
    adversary — including, on the shard-flip seeds, a member
    falsifying its own leaf partials.  Every run completes
    bit-identical to the unsharded fault-free reference or aborts
    classified, and every absorbed falsification was detected.
    """
    run = _execute(oracle, seed, shards)
    _collect(run, seed, shards, member_restorations=run.member_restorations)
    assert run.violation is None, run.violation
    if run.error in ("IntegrityError", "SealingError"):
        assert run.federation.integrity_monitor.detections >= 1
    if run.verdict == "completed" and run.injected["shard_equivocations"]:
        # A completed run that absorbed a falsified partial must have
        # detected it and repaired around the liar.
        assert run.integrity_counters["equivocations_detected"] >= 1
        assert run.member_restorations >= 1


def test_sharded_sweep_armed_the_interior_node_attack():
    """At least one sharded run absorbed or aborted on a shard flip."""
    sharded = [r for r in _collected_runs.values() if r["shards"] > 1]
    assert len(sharded) == len(SHARDED_SEEDS) * len(SHARD_AXIS)
    assert any(
        r["injected"].get("shard_equivocations", 0) >= 1 for r in sharded
    )


def test_sweep_covers_modes_collusion_and_adversaries():
    cells = {(seed_mode(s), seed_f(s)) for s in BYZANTINE_SEEDS}
    assert cells == {
        ("sequential", 0),
        ("sequential", 1),
        ("parallel", 0),
        ("parallel", 1),
    }
    assert len(BYZANTINE_SEEDS) >= 16
    assert (
        BYZANTINE_EQUIVOCATE_SEEDS
        and BYZANTINE_STALE_SEEDS
        and BYZANTINE_CORRUPT_SEEDS
    )
    # The sharded subset keeps the spread and adds the interior-node
    # attack on top of the broadcast/checkpoint adversaries.
    assert {seed_mode(s) for s in SHARDED_SEEDS} == {
        "sequential",
        "parallel",
    }
    assert {seed_f(s) for s in SHARDED_SEEDS} == {0, 1}
    assert set(SHARDED_SEEDS) & BYZANTINE_EQUIVOCATE_SEEDS
    assert set(SHARDED_SEEDS) & BYZANTINE_CORRUPT_SEEDS
    assert SHARD_FLIP_SEEDS <= set(SHARDED_SEEDS)
    assert len(SHARD_AXIS) >= 2


def test_tier_exercises_every_detection_path():
    """Across the tier, each key integrity metric fired at least once.

    Runs after the parametrized sweeps (pytest executes tests in
    definition order within a module), so the aggregate is complete.
    """
    assert len(_collected_runs) == len(BYZANTINE_SEEDS) + len(
        SHARDED_SEEDS
    ) * len(SHARD_AXIS)
    totals = _aggregate_counters()
    assert totals["equivocations_detected"] >= 1
    assert totals["stale_checkpoints_rejected"] >= 1
    assert totals["sealed_restore_failures"] >= 1
    assert totals["quarantines"] >= 1


def test_byzantine_replay_is_deterministic(oracle):
    """The same seed reproduces the same adversary, bit for bit."""
    seed = 105  # corrupt-checkpoint + equivocation: heaviest machinery
    observed = []
    for _ in range(2):
        run = _execute(oracle, seed)
        observed.append(
            (
                run.verdict if run.error is None else run.error,
                run.injected,
                run.integrity_counters,
            )
        )
    assert observed[0] == observed[1]
