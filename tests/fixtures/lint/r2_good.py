"""R2 fixture — protocol-scope code with deterministic orderings."""

import time


def decide(candidates, published, network):
    order = sorted(set(candidates))  # sorted() pins the order
    for snp in sorted({3, 1, 2}):
        order.append(snp)
    labels = [str(s) for s in sorted(set(published))]
    survivors = {s for s in set(candidates)}  # set -> set stays unordered
    begin = time.perf_counter()  # metering clock is allowed
    deadline = network.simulated_time + 1.0  # simulated clock for decisions
    return order, labels, survivors, deadline, time.perf_counter() - begin
