"""Warm enclave-pool management.

Each pool slot is a fully provisioned
:class:`~repro.core.federation.FederationSubstrate` — platforms,
attested enclaves and a pairwise channel mesh — living in its own
namespace (:meth:`~repro.net.SimulatedNetwork.scope`) of the service's
shared router.  Provisioning (attestation + DH key agreement + channel
establishment) is paid once per slot; every study bound to the slot
afterwards reuses the substrate and pays only ``configure`` + dataset
sealing, which is the warm-vs-cold amortization the serve benchmark
measures.

Slots are meshes, not stars: different studies elect different leaders
(the election is a pure function of ``study_id``/``seed``), so every
pair of enclaves needs a channel up front.  A slot whose federation
failed over, crashed an enclave, quarantined a member or had its study
cancelled mid-run is retired — its scope is torn off the router and a
fresh generation is provisioned in its place — because a replacement
leader enclave only re-attests the star its own study needed, and a
cancelled study may strand asymmetric channel sequence state.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Deque, Dict, List, Optional

from ..core.federation import FederationSubstrate, provision_substrate
from ..crypto.rng import DeterministicRng
from ..errors import ServiceError
from ..net import SimulatedNetwork
from ..net.network import ScopedNetwork
from .config import ServiceConfig


class PoolSlot:
    """One warm substrate plus its router scope and usage accounting."""

    def __init__(
        self,
        index: int,
        generation: int,
        namespace: str,
        scope: ScopedNetwork,
        substrate: FederationSubstrate,
    ):
        self.index = index
        self.generation = generation
        self.namespace = namespace
        self.scope = scope
        self.substrate = substrate
        self.studies_served = 0

    def current_memory_bytes(self) -> int:
        """Trusted memory currently registered across the slot's enclaves."""
        return sum(
            enclave.meter.current_memory_bytes
            for enclave in self.substrate.enclaves.values()
        )


class EnclavePool:
    """A fixed-size pool of warm substrates over one shared router."""

    def __init__(
        self,
        config: ServiceConfig,
        *,
        router: Optional[SimulatedNetwork] = None,
    ):
        self._config = config
        self.router = router if router is not None else SimulatedNetwork()
        self.member_ids: List[str] = [
            f"gdo-{index}" for index in range(config.num_members)
        ]
        self._slots_lock = threading.Condition()
        self._free: Deque[PoolSlot] = deque()
        self._all: List[PoolSlot] = []
        self._generations = 0
        self._closed = False
        self._warm_hits = 0
        self._cold_provisions = 0
        self._retired = 0
        for index in range(config.pool_size):
            slot = self._provision_slot(index)
            self._all.append(slot)
            self._free.append(slot)

    def _provision_slot(self, index: int) -> PoolSlot:
        self._generations += 1
        generation = self._generations
        namespace = (
            f"{self._config.service_id}/slot-{index}-gen{generation}"
        )
        scope = self.router.scope(namespace)
        substrate = provision_substrate(
            self.member_ids,
            rng=DeterministicRng(
                f"service/{self._config.service_id}/{self._config.seed}"
                f"/{namespace}"
            ),
            network=scope,
            topology="mesh",
        )
        self._cold_provisions += 1
        return PoolSlot(index, generation, namespace, scope, substrate)

    # -- slot lifecycle --------------------------------------------------------

    def acquire(self, timeout: Optional[float] = None) -> PoolSlot:
        """Take a warm slot, blocking until one frees up."""
        with self._slots_lock:
            while not self._free:
                if self._closed:
                    raise ServiceError("the enclave pool is closed")
                if not self._slots_lock.wait(timeout=timeout):
                    raise ServiceError(
                        "timed out waiting for a warm enclave slot"
                    )
            if self._closed:
                raise ServiceError("the enclave pool is closed")
            slot = self._free.popleft()
            if slot.studies_served > 0:
                self._warm_hits += 1
            return slot

    def release(self, slot: PoolSlot, *, healthy: bool = True) -> None:
        """Return a slot; an unhealthy one is retired and replaced.

        Unhealthy means the session's federation mutated the substrate
        beyond what ``configure`` can reset — a crashed enclave, a
        leader failover (star re-attestation over a mesh slot), or a
        Byzantine quarantine.  The scope is torn off the router and a
        fresh generation provisioned so queued studies never inherit
        poisoned state.
        """
        with self._slots_lock:
            if self._closed:
                self._retire(slot)
            elif healthy:
                slot.studies_served += 1
                self._free.append(slot)
            else:
                self._retire(slot)
                replacement = self._provision_slot(slot.index)
                self._all.append(replacement)
                self._free.append(replacement)
            self._slots_lock.notify_all()

    def _retire(self, slot: PoolSlot) -> None:
        self.router.release_scope(slot.scope)
        self._all.remove(slot)
        self._retired += 1

    def close(self) -> None:
        """Tear every idle slot down and refuse further acquisition."""
        with self._slots_lock:
            self._closed = True
            while self._free:
                self._retire(self._free.popleft())
            self._slots_lock.notify_all()

    # -- accounting ------------------------------------------------------------

    def current_memory_bytes(self) -> int:
        """Trusted memory registered across every slot (in use or idle)."""
        with self._slots_lock:
            slots = list(self._all)
        return sum(slot.current_memory_bytes() for slot in slots)

    def stats(self) -> Dict[str, float]:
        with self._slots_lock:
            return {
                "pool_slots": len(self._all),
                "warm_hits": self._warm_hits,
                "cold_provisions": self._cold_provisions,
                "retired_slots": self._retired,
                "pool_memory_bytes": sum(
                    slot.current_memory_bytes() for slot in self._all
                ),
            }
