"""Membership-inference attacks against GWAS releases.

The adversary of the paper's threat model owns a victim's genotype and
a reference population with an allele distribution similar to the case
population's, observes released GWAS statistics, and tries to decide
whether the victim participated in the case group.  Two detectors are
implemented:

* :class:`LrAttack` — the likelihood-ratio detector of Sankararaman et
  al. (SecureGenome), the strongest statistic the paper considers and
  the one GenDPR's Phase 3 bounds by construction.
* :class:`HomerAttack` — Homer et al.'s distance statistic
  ``D(victim) = sum_l |x_l - p_l| - |x_l - phat_l``, kept as the
  classical comparator (SG's authors showed the LR-test dominates it).

Both calibrate their decision threshold on the reference population at
a chosen false-positive rate, mirroring exactly how the protocol's own
safety check measures identification power — so "the release is safe"
and "the attack fails" are the same yardstick.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..errors import GenomicsError
from ..stats.lr_test import detection_threshold, lr_matrix, lr_scores


def _as_probability_vector(values: np.ndarray, length: int, name: str) -> np.ndarray:
    array = np.asarray(values, dtype=np.float64)
    if array.shape != (length,):
        raise GenomicsError(f"{name} must have shape ({length},)")
    if np.any(array < 0) or np.any(array > 1):
        raise GenomicsError(f"{name} must contain probabilities")
    return array


@dataclass(frozen=True)
class AttackDecision:
    """Outcome of testing one genotype against a release."""

    score: float
    threshold: float
    inferred_member: bool


class LrAttack:
    """LR membership detector calibrated on a reference population.

    Args:
        case_frequencies: released case allele frequencies over the
            attacked SNP set (what an open GWAS release exposes).
        reference_frequencies: public reference frequencies over the
            same SNPs.
        reference_genotypes: reference individuals' genotypes over the
            same SNPs, used to calibrate the threshold empirically.
        alpha: tolerated false-positive rate.
    """

    def __init__(
        self,
        case_frequencies: np.ndarray,
        reference_frequencies: np.ndarray,
        reference_genotypes: np.ndarray,
        *,
        alpha: float = 0.1,
    ):
        genotypes = np.asarray(reference_genotypes)
        if genotypes.ndim != 2:
            raise GenomicsError("reference genotypes must be a 2-D matrix")
        length = genotypes.shape[1]
        self._case_freqs = _as_probability_vector(
            case_frequencies, length, "case_frequencies"
        )
        self._ref_freqs = _as_probability_vector(
            reference_frequencies, length, "reference_frequencies"
        )
        self._alpha = alpha
        reference_matrix = lr_matrix(genotypes, self._case_freqs, self._ref_freqs)
        self._threshold = detection_threshold(
            lr_scores(reference_matrix), alpha
        )

    @property
    def threshold(self) -> float:
        return self._threshold

    def score(self, genotype: np.ndarray) -> float:
        """The victim's LR score over the attacked SNPs."""
        row = np.asarray(genotype).reshape(1, -1)
        matrix = lr_matrix(row, self._case_freqs, self._ref_freqs)
        return float(matrix.sum())

    def infer(self, genotype: np.ndarray) -> AttackDecision:
        """Decide membership for one genotype."""
        score = self.score(genotype)
        return AttackDecision(
            score=score,
            threshold=self._threshold,
            inferred_member=score > self._threshold,
        )

    def infer_batch(self, genotypes: np.ndarray) -> np.ndarray:
        """Vectorised membership decisions (bool per row)."""
        matrix = lr_matrix(
            np.asarray(genotypes), self._case_freqs, self._ref_freqs
        )
        return lr_scores(matrix) > self._threshold


class HomerAttack:
    """Homer et al.'s distance detector.

    ``D = sum_l (|x_l - p_l| - |x_l - phat_l|)`` is positive when the
    victim's genotype sits closer to the case frequencies than to the
    reference's.  The threshold is calibrated on reference genotypes at
    the same false-positive rate as :class:`LrAttack`.
    """

    def __init__(
        self,
        case_frequencies: np.ndarray,
        reference_frequencies: np.ndarray,
        reference_genotypes: np.ndarray,
        *,
        alpha: float = 0.1,
    ):
        genotypes = np.asarray(reference_genotypes, dtype=np.float64)
        if genotypes.ndim != 2:
            raise GenomicsError("reference genotypes must be a 2-D matrix")
        length = genotypes.shape[1]
        self._case_freqs = _as_probability_vector(
            case_frequencies, length, "case_frequencies"
        )
        self._ref_freqs = _as_probability_vector(
            reference_frequencies, length, "reference_frequencies"
        )
        self._alpha = alpha
        self._threshold = detection_threshold(
            self._scores(genotypes), alpha
        )

    def _scores(self, genotypes: np.ndarray) -> np.ndarray:
        x = np.asarray(genotypes, dtype=np.float64)
        return (
            np.abs(x - self._ref_freqs) - np.abs(x - self._case_freqs)
        ).sum(axis=1)

    @property
    def threshold(self) -> float:
        return self._threshold

    def score(self, genotype: np.ndarray) -> float:
        return float(self._scores(np.asarray(genotype).reshape(1, -1))[0])

    def infer(self, genotype: np.ndarray) -> AttackDecision:
        score = self.score(genotype)
        return AttackDecision(
            score=score,
            threshold=self._threshold,
            inferred_member=score > self._threshold,
        )

    def infer_batch(self, genotypes: np.ndarray) -> np.ndarray:
        return self._scores(np.asarray(genotypes)) > self._threshold


def collusion_adjusted_frequencies(
    total_counts: np.ndarray,
    total_individuals: int,
    colluder_counts: Sequence[np.ndarray],
    colluder_individuals: Sequence[int],
) -> tuple[np.ndarray, int]:
    """Case frequencies a colluding coalition can isolate.

    Colluders know their own contributions; subtracting them from the
    released aggregate exposes the honest members' pooled frequencies —
    the quantity GenDPR's combination analysis defends (Section 5.6).

    Returns the isolated frequency vector and the number of honest
    individuals it covers.
    """
    counts = np.asarray(total_counts, dtype=np.int64).copy()
    remaining = int(total_individuals)
    for vector, size in zip(colluder_counts, colluder_individuals):
        counts -= np.asarray(vector, dtype=np.int64)
        remaining -= int(size)
    if remaining <= 0:
        raise GenomicsError("colluders cannot cover the whole case population")
    if np.any(counts < 0) or np.any(counts > remaining):
        raise GenomicsError("colluder contributions exceed the aggregate")
    return counts.astype(np.float64) / remaining, remaining
