#!/usr/bin/env python3
"""GenDPR vs centralized vs naive — the Table 4 story in one script.

Runs the same study three ways:

* **Centralized** — SecureGenome in one TEE; every member ships its
  (encrypted) genomes to a central enclave.  Correct, but genomes cross
  institutional borders (a GDPR problem) at genome-scale bandwidth.
* **GenDPR** — the distributed protocol; only aggregate statistics
  move, and the selected SNPs match the centralized verdict *exactly*.
* **Naive distributed** — each member verifies on its local shard and
  the leader intersects; cheap, but the LD and LR phases need globally
  aggregated statistics, so the naive verdict diverges.

Run:  python examples/baseline_comparison.py
"""

from __future__ import annotations

from repro import StudyConfig, SyntheticSpec, generate_cohort, partition_cohort, run_study
from repro.core.baseline import run_centralized_study
from repro.core.naive import run_naive_study

NUM_SNPS = 600
NUM_MEMBERS = 3


def main() -> None:
    spec = SyntheticSpec(
        num_snps=NUM_SNPS, num_case=1_200, num_control=1_000, seed=4
    )
    cohort, _ = generate_cohort(spec)
    config = StudyConfig(snp_count=NUM_SNPS, study_id="baselines")

    central = run_centralized_study(cohort, config, NUM_MEMBERS)
    gendpr = run_study(cohort, config, NUM_MEMBERS)
    naive = run_naive_study(
        cohort, config, partition_cohort(cohort, NUM_MEMBERS)
    )

    print(f"Study: {cohort.describe()}, {NUM_MEMBERS} GDOs\n")
    print(f"{'system':<20s} {'MAF':>6s} {'LD':>6s} {'LR':>6s} "
          f"{'net bytes':>12s} {'time(ms)':>10s}")
    print("-" * 64)
    rows = [
        ("Centralized", central.phase_counts(), central.network_bytes,
         central.timings.total_seconds * 1e3),
        ("GenDPR", gendpr.phase_counts(), gendpr.network_bytes,
         gendpr.timings.total_seconds * 1e3),
        ("Naive distributed", naive.phase_counts(), None, None),
    ]
    for name, counts, net, ms in rows:
        net_s = f"{net:,}" if net is not None else "-"
        ms_s = f"{ms:.1f}" if ms is not None else "-"
        print(f"{name:<20s} {counts['MAF']:>6d} {counts['LD']:>6d} "
              f"{counts['LR']:>6d} {net_s:>12s} {ms_s:>10s}")

    exact = (gendpr.l_prime == central.l_prime
             and gendpr.l_double_prime == central.l_double_prime
             and gendpr.l_safe == central.l_safe)
    print(f"\nGenDPR == centralized, phase by phase: {exact}")
    naive_disjoint = set(naive.l_safe) - set(central.l_safe)
    print(f"Naive SNPs not in the correct verdict: {len(naive_disjoint)} "
          f"(these selections are untrustworthy)")
    print(f"\nGenome bytes the centralized design shipped: "
          f"{cohort.case.nbytes:,}+ — GenDPR shipped none.")


if __name__ == "__main__":
    main()
