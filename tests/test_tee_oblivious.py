"""Data-oblivious primitives: correctness vs the non-oblivious versions."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import TEEError
from repro.stats import detection_threshold, empirical_power, maf_filter
from repro.stats.lr_test import select_safe_subset
from repro.tee.oblivious import (
    oblivious_choose,
    oblivious_empirical_power,
    oblivious_maf_mask,
    oblivious_prefix_selection,
    oblivious_quantile_threshold,
    oblivious_select,
    oblivious_sort,
    oblivious_write,
)


class TestPrimitives:
    def test_select(self):
        values = np.array([10.0, 20.0, 30.0])
        for index in range(3):
            assert oblivious_select(values, index) == values[index]

    def test_select_validation(self):
        with pytest.raises(TEEError):
            oblivious_select(np.array([1.0]), 5)
        with pytest.raises(TEEError):
            oblivious_select(np.zeros((2, 2)), 0)

    def test_write(self):
        values = np.array([1.0, 2.0, 3.0])
        out = oblivious_write(values, 1, 9.0)
        assert list(out) == [1.0, 9.0, 3.0]
        assert list(values) == [1.0, 2.0, 3.0]  # original untouched
        with pytest.raises(TEEError):
            oblivious_write(values, 7, 0.0)

    def test_choose(self):
        assert oblivious_choose(True, 5.0, 7.0) == 5.0
        assert oblivious_choose(False, 5.0, 7.0) == 7.0

    @given(st.lists(st.floats(allow_nan=False, allow_infinity=False,
                              width=32), max_size=60))
    @settings(max_examples=50, deadline=None)
    def test_sort_matches_numpy(self, values):
        array = np.array(values, dtype=np.float64)
        assert np.array_equal(oblivious_sort(array), np.sort(array))

    def test_sort_edge_cases(self):
        assert oblivious_sort(np.array([])).size == 0
        assert list(oblivious_sort(np.array([3.0]))) == [3.0]
        # Non-power-of-two length with duplicates.
        values = np.array([5.0, 1.0, 5.0, 2.0, 1.0])
        assert np.array_equal(oblivious_sort(values), np.sort(values))
        with pytest.raises(TEEError):
            oblivious_sort(np.zeros((2, 2)))


class TestObliviousStatistics:
    def test_quantile_threshold_matches_reference(self):
        rng = np.random.Generator(np.random.PCG64(3))
        scores = rng.normal(size=173)
        for alpha in (0.05, 0.1, 0.5):
            assert oblivious_quantile_threshold(scores, alpha) == pytest.approx(
                detection_threshold(scores, alpha)
            )

    def test_quantile_validation(self):
        with pytest.raises(TEEError):
            oblivious_quantile_threshold(np.array([]), 0.1)
        with pytest.raises(TEEError):
            oblivious_quantile_threshold(np.array([1.0]), 0.0)

    def test_maf_mask_matches_filter(self):
        rng = np.random.Generator(np.random.PCG64(4))
        freqs = rng.uniform(0, 1, size=300)
        mask = oblivious_maf_mask(freqs, 0.05)
        assert mask.shape == (300,)
        assert sorted(np.nonzero(mask)[0].tolist()) == maf_filter(freqs, 0.05)

    def test_empirical_power_matches_reference(self):
        rng = np.random.Generator(np.random.PCG64(5))
        case = rng.normal(0.5, 1.0, size=211)
        reference = rng.normal(0.0, 1.0, size=187)
        assert oblivious_empirical_power(case, reference, 0.1) == pytest.approx(
            empirical_power(case, reference, 0.1)
        )

    def test_empirical_power_validation(self):
        with pytest.raises(TEEError):
            oblivious_empirical_power(np.array([]), np.array([1.0]), 0.1)


class TestObliviousSelection:
    def _setup(self, seed=6, snps=25):
        rng = np.random.Generator(np.random.PCG64(seed))
        p = rng.uniform(0.1, 0.4, size=snps)
        phat = np.clip(p + rng.normal(0, 0.12, size=snps), 0.01, 0.99)
        case = (rng.random((150, snps)) < phat).astype(np.float64)
        ref = (rng.random((150, snps)) < p).astype(np.float64)
        from repro.stats.lr_test import lr_matrix

        case_lr = lr_matrix(case, case.mean(axis=0), ref.mean(axis=0))
        ref_lr = lr_matrix(ref, case.mean(axis=0), ref.mean(axis=0))
        return case_lr, ref_lr

    def test_matches_greedy_selection(self):
        case_lr, ref_lr = self._setup()
        order = list(range(case_lr.shape[1]))
        reference = select_safe_subset(
            case_lr, ref_lr, order, alpha=0.1, beta=0.6
        )
        mask, power = oblivious_prefix_selection(
            case_lr, ref_lr, np.array(order), alpha=0.1, beta=0.6
        )
        oblivious_positions = sorted(np.nonzero(mask)[0].tolist())
        assert oblivious_positions == sorted(reference.selected_columns)
        assert power == pytest.approx(reference.power)

    def test_mask_shape_is_data_independent(self):
        case_lr, ref_lr = self._setup()
        order = np.arange(case_lr.shape[1])
        strict_mask, _ = oblivious_prefix_selection(
            case_lr, ref_lr, order, alpha=0.1, beta=0.01
        )
        lax_mask, _ = oblivious_prefix_selection(
            case_lr, ref_lr, order, alpha=0.1, beta=0.99
        )
        # Very different selections, identical output shapes.
        assert strict_mask.shape == lax_mask.shape
        assert strict_mask.sum() < lax_mask.sum()
