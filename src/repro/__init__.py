"""GenDPR: Secure and Distributed Assessment of Privacy-Preserving GWAS Releases.

A from-scratch Python reproduction of Pascoal, Decouchant and Völp,
Middleware '22 (DOI 10.1145/3528535.3565253): a distributed middleware
in which a federation of genome data owners, each hosting a (simulated)
trusted execution environment, jointly determines the subset of SNPs
whose GWAS statistics can be released without enabling membership
inference - without any genome leaving its owner's premises, and
tolerating up to all-but-one honest-but-curious colluding members.

Quickstart::

    from repro import SyntheticSpec, generate_cohort, StudyConfig, run_study

    cohort, _ = generate_cohort(SyntheticSpec(num_snps=500,
                                              num_case=1000,
                                              num_control=900))
    config = StudyConfig(snp_count=500)
    result = run_study(cohort, config, num_members=3)
    print(result.summary())

Subpackages: :mod:`repro.crypto`, :mod:`repro.tee`, :mod:`repro.net`,
:mod:`repro.genomics`, :mod:`repro.stats`, :mod:`repro.core`,
:mod:`repro.attacks`, :mod:`repro.bench`, :mod:`repro.obs`,
:mod:`repro.serve`.

For many studies over one long-lived federation, the service form keeps
enclaves attested and warm between requests::

    from repro.serve import FederationService, ServiceConfig

    with FederationService(ServiceConfig(num_members=3)) as service:
        study_id = service.submit(cohort, config)
        result = service.result(study_id, timeout=120)
"""

from .config import (
    CollusionPolicy,
    FaultConfig,
    IntegrityConfig,
    NetworkProfile,
    ObservabilityConfig,
    PrivacyThresholds,
    ResilienceConfig,
    StudyConfig,
)
from .core import (
    GenDPRProtocol,
    GwasRelease,
    StudyResult,
    build_federation,
    build_release,
    hybrid_release,
    run_centralized_study,
    run_naive_study,
    run_study,
)
from .errors import ReproError
from .genomics import (
    Cohort,
    GenotypeMatrix,
    SnpPanel,
    SyntheticSpec,
    generate_cohort,
    partition_cohort,
)
from .obs import RunReport
from .serve import FederationService, ServiceConfig

__version__ = "1.3.0"

__all__ = [
    "CollusionPolicy",
    "FaultConfig",
    "IntegrityConfig",
    "ResilienceConfig",
    "NetworkProfile",
    "ObservabilityConfig",
    "PrivacyThresholds",
    "RunReport",
    "StudyConfig",
    "FederationService",
    "ServiceConfig",
    "GenDPRProtocol",
    "GwasRelease",
    "StudyResult",
    "build_federation",
    "build_release",
    "hybrid_release",
    "run_centralized_study",
    "run_naive_study",
    "run_study",
    "ReproError",
    "Cohort",
    "GenotypeMatrix",
    "SnpPanel",
    "SyntheticSpec",
    "generate_cohort",
    "partition_cohort",
    "__version__",
]
