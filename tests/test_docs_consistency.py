"""Documentation stays consistent with the code it describes."""

from __future__ import annotations

import pathlib
import re

import pytest

ROOT = pathlib.Path(__file__).parent.parent


@pytest.fixture(scope="module")
def repo_files():
    return {
        str(path.relative_to(ROOT))
        for path in ROOT.rglob("*")
        if path.is_file() and ".git" not in path.parts
    }


class TestDocsExist:
    @pytest.mark.parametrize(
        "name",
        ["README.md", "DESIGN.md", "EXPERIMENTS.md", "CHANGELOG.md",
         "LICENSE", "docs/PROTOCOL.md"],
    )
    def test_required_documents_present(self, name):
        assert (ROOT / name).is_file()

    def test_design_confirms_paper_identity(self):
        text = (ROOT / "DESIGN.md").read_text()
        assert "10.1145/3528535.3565253" in text
        assert "correct paper" in text


class TestCrossReferences:
    def test_design_experiment_index_names_real_benches(self):
        text = (ROOT / "DESIGN.md").read_text()
        for bench in re.findall(r"benchmarks/(bench_\w+\.py)", text):
            assert (ROOT / "benchmarks" / bench).is_file(), bench

    def test_experiments_index_names_real_benches(self):
        text = (ROOT / "EXPERIMENTS.md").read_text()
        for bench in re.findall(r"`(bench_\w+\.py)`", text):
            assert (ROOT / "benchmarks" / bench).is_file(), bench

    def test_readme_examples_table_names_real_scripts(self):
        text = (ROOT / "README.md").read_text()
        for script in re.findall(r"\| `(\w+\.py)` \|", text):
            assert (ROOT / "examples" / script).is_file(), script

    def test_readme_modules_exist(self):
        text = (ROOT / "README.md").read_text()
        for module in re.findall(r"`repro\.([a-z_.]+)`", text):
            path = ROOT / "src" / "repro" / (module.replace(".", "/"))
            assert (
                path.with_suffix(".py").is_file() or (path / "__init__.py").is_file()
            ), module

    def test_protocol_doc_names_real_components(self):
        text = (ROOT / "docs" / "PROTOCOL.md").read_text()
        for module in re.findall(r"`repro\.([a-z_.]+)\.[A-Za-z_]+`", text):
            path = ROOT / "src" / "repro" / (module.replace(".", "/"))
            assert (
                path.with_suffix(".py").is_file() or (path / "__init__.py").is_file()
            ), module

    def test_every_benchmark_is_indexed_in_experiments(self):
        text = (ROOT / "EXPERIMENTS.md").read_text()
        for bench in (ROOT / "benchmarks").glob("bench_*.py"):
            assert bench.name in text, f"{bench.name} missing from EXPERIMENTS.md"
